//! Event-driven INP: per-session state machines multiplexed by a
//! poll-based reactor over byte-stream transports.
//!
//! The paper's Figure 4 exchange used to be driven as a synchronous call
//! chain (`run_session`): one client at a time walks negotiation, PAD
//! download, and the application exchange to completion. That shape cannot
//! overlap sessions — the sharded proxy scales but the drive loop
//! serializes. Here the whole exchange is inverted into events:
//!
//! * [`InpSession`] is one negotiation/session as a state machine
//!   (`Init → MetaExchange → PathSearch → PadDownload → Sessioning →
//!   Done`/`Failed`). It consumes framed [`InpMessage`]s and emits the
//!   replies the protocol calls for; it never blocks and never panics on
//!   hostile input — every (phase, message) pair either advances or
//!   returns a typed [`SessionError`].
//! * [`Reactor`] multiplexes many in-flight sessions over **one shared**
//!   `&AdaptationProxy` + `&ApplicationServer` + `&PadRepo` trio. Each
//!   session registers a [`Transport`] pair at spawn; every poll flushes
//!   the session's pending frames subject to the peer's `writable()`
//!   budget, drains whatever bytes the wire has made readable, routes the
//!   service-side frames (proxy endpoint, PAD repository, application
//!   server), and delivers **one** reassembled frame to the session — so
//!   with N live sessions the reactor round-robins between them and
//!   session 63 negotiates while session 0 is mid-download. No threads, no
//!   async runtime: a plain readiness loop a caller can drive, stop, or
//!   fan out (one reactor per worker thread — all workers sharing the same
//!   server and proxy, which both serve through `&self`).
//!
//! Frames that don't fit the peer's window queue per session (their depth
//! is the `fractal_transport_queue_depth` gauge); over a
//! [`SimLinkTransport`](crate::transport::SimLinkTransport) the run loop
//! advances the pair's simulated clock to the next delivery instant when
//! every live session is transport-starved. Only when no session has
//! bytes in flight *and* none has deliverable work does the reactor
//! report [`ReactorStalled`] — distinguishing protocol-stuck from
//! transport-starved is what keeps the CI smoke gate's timeout wrapper an
//! actual deadlock detector.

use std::collections::VecDeque;
use std::sync::Arc;

use fractal_telemetry::journal::{Event, Journal, KindId, SessionJournal};
use fractal_telemetry::{MonotonicClock, SharedClock, SpanId, Tracer};

use crate::client::FractalClient;
use crate::endpoint::{ProtocolViolation, ProxyEndpoint};
use crate::error::{FractalError, InpError, WireError};
use crate::inp::InpMessage;
use crate::meta::{AppId, NtwkMeta, PadId, PadMeta, Reader, Writer};
use crate::proxy::AdaptationProxy;
use crate::server::ApplicationServer;
use crate::session::PadRepo;
use crate::transport::{Framer, SendQueue, Transport, TransportPair, TransportProfile};

/// Phases of one event-driven INP session, in protocol order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionPhase {
    /// Created; nothing sent yet.
    Init,
    /// INIT_REQ sent; awaiting INIT_REP then CLI_META_REQ.
    MetaExchange,
    /// CLI_META_REP sent; the proxy is running the Figure 6 path search.
    PathSearch,
    /// Awaiting PAD_DOWNLOAD_REPs for the negotiated, not-yet-deployed
    /// PADs.
    PadDownload,
    /// APP_REQ sent; awaiting the encoded APP_REP.
    Sessioning,
    /// Content decoded and stored; terminal.
    Done,
    /// Terminal failure; see [`InpSession::error`].
    Failed,
}

impl SessionPhase {
    /// Whether the session can make no further transitions.
    pub fn is_terminal(self) -> bool {
        matches!(self, SessionPhase::Done | SessionPhase::Failed)
    }

    /// Index of this phase among the five timed (non-terminal) phases, in
    /// protocol order; `None` for the terminal phases.
    pub fn timed_index(self) -> Option<usize> {
        match self {
            SessionPhase::Init => Some(0),
            SessionPhase::MetaExchange => Some(1),
            SessionPhase::PathSearch => Some(2),
            SessionPhase::PadDownload => Some(3),
            SessionPhase::Sessioning => Some(4),
            SessionPhase::Done | SessionPhase::Failed => None,
        }
    }

    /// Phase name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            SessionPhase::Init => "Init",
            SessionPhase::MetaExchange => "MetaExchange",
            SessionPhase::PathSearch => "PathSearch",
            SessionPhase::PadDownload => "PadDownload",
            SessionPhase::Sessioning => "Sessioning",
            SessionPhase::Done => "Done",
            SessionPhase::Failed => "Failed",
        }
    }

    /// Index of this phase among all seven phases, in protocol order —
    /// how the flight-recorder kind table is laid out.
    fn journal_index(self) -> usize {
        match self {
            SessionPhase::Init => 0,
            SessionPhase::MetaExchange => 1,
            SessionPhase::PathSearch => 2,
            SessionPhase::PadDownload => 3,
            SessionPhase::Sessioning => 4,
            SessionPhase::Done => 5,
            SessionPhase::Failed => 6,
        }
    }
}

/// All seven phases in [`SessionPhase::journal_index`] order.
const ALL_PHASES: [SessionPhase; 7] = [
    SessionPhase::Init,
    SessionPhase::MetaExchange,
    SessionPhase::PathSearch,
    SessionPhase::PadDownload,
    SessionPhase::Sessioning,
    SessionPhase::Done,
    SessionPhase::Failed,
];

/// Typed rejections of the session state machine proper. Everything a
/// reactor caller sees is widened to [`InpError`] (see
/// [`InpSession::error`] and [`Reactor::run`]).
#[derive(Clone, PartialEq, Debug)]
pub enum SessionError {
    /// A message arrived that the current phase does not accept (the
    /// session's state is left unchanged — duplicates and reordering are
    /// rejected, not acted on).
    UnexpectedMessage {
        /// Phase at the time.
        phase: &'static str,
        /// Offending message name.
        message: &'static str,
    },
    /// `start()` called on a session that already started.
    AlreadyStarted,
    /// A `PAD_DOWNLOAD_REP` for a PAD that is not pending download.
    UnexpectedPad(PadId),
    /// An `APP_REP` for a content id the session never requested.
    WrongContent {
        /// Content the session asked for.
        expected: u32,
        /// Content the reply carried.
        got: u32,
    },
    /// A service endpoint rejected the session's message.
    Peer(ProtocolViolation),
    /// A framework failure (negotiation, PAD gauntlet, server encode).
    Fractal(FractalError),
}

impl core::fmt::Display for SessionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SessionError::UnexpectedMessage { phase, message } => {
                write!(f, "unexpected {message} in phase {phase}")
            }
            SessionError::AlreadyStarted => write!(f, "session already started"),
            SessionError::UnexpectedPad(id) => write!(f, "PAD {id} was not pending download"),
            SessionError::WrongContent { expected, got } => {
                write!(f, "APP_REP for content {got}, expected {expected}")
            }
            SessionError::Peer(v) => write!(f, "peer rejected message: {v}"),
            SessionError::Fractal(e) => write!(f, "session failed: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<FractalError> for SessionError {
    fn from(e: FractalError) -> Self {
        SessionError::Fractal(e)
    }
}

/// Encodes the `APP_REQ` payload the event-driven server side understands:
/// content id, the version the client already holds (if any), and the
/// version it wants.
pub fn encode_app_payload(content_id: u32, have: Option<u32>, want: u32) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(content_id);
    w.u32(want);
    match have {
        Some(v) => {
            w.u8(1);
            w.u32(v);
        }
        None => w.u8(0),
    }
    w.0
}

/// Decodes an `APP_REQ` payload produced by [`encode_app_payload`].
pub fn decode_app_payload(payload: &[u8]) -> Result<(u32, Option<u32>, u32), WireError> {
    let mut r = Reader::new(payload);
    let content_id = r.u32()?;
    let want = r.u32()?;
    let have = match r.u8()? {
        0 => None,
        1 => Some(r.u32()?),
        _ => return Err(WireError::BadEnum("have flag")),
    };
    if !r.done() {
        return Err(WireError::TrailingBytes);
    }
    Ok((content_id, have, want))
}

/// One negotiation/session as an event-driven state machine (client side).
///
/// Owns its [`FractalClient`], so PAD deployment, the protocol cache, and
/// content decoding all run against real client state; the transport is
/// whatever delivers [`InpMessage`]s to [`on_message`](Self::on_message) —
/// normally a [`Reactor`] pumping a framed byte stream.
#[derive(Debug)]
pub struct InpSession {
    client: FractalClient,
    app_id: AppId,
    content_id: u32,
    want_version: u32,
    phase: SessionPhase,
    init_acked: bool,
    pads: Vec<PadMeta>,
    pending: Vec<PadMeta>,
    error: Option<InpError>,
    /// Set by [`renegotiate`](Self::renegotiate): replies from the
    /// pre-handoff generation may still be in flight and are dropped
    /// instead of failing the session.
    tolerates_stale: bool,
    /// Caller-assigned flight-recorder label (e.g. the global session
    /// index in a sharded run); defaults to the reactor slot id.
    label: Option<u64>,
    /// Flight-recorder handle plus the `stale:drop` kind, attached by the
    /// reactor so silently-tolerated stale deliveries leave a trace.
    journal: Option<(SessionJournal, KindId)>,
}

impl InpSession {
    /// Creates a session that will fetch `content_id` at `want_version`
    /// from `app_id`.
    pub fn new(client: FractalClient, app_id: AppId, content_id: u32, want_version: u32) -> Self {
        InpSession {
            client,
            app_id,
            content_id,
            want_version,
            phase: SessionPhase::Init,
            init_acked: false,
            pads: Vec::new(),
            pending: Vec::new(),
            error: None,
            tolerates_stale: false,
            label: None,
            journal: None,
        }
    }

    /// Tags the session with a caller-chosen flight-recorder label —
    /// the sharded front-end uses the *global* session index, so journal
    /// queries line up across shards.
    pub fn with_label(mut self, label: u64) -> Self {
        self.label = Some(label);
        self
    }

    /// The caller-assigned flight-recorder label, if any.
    pub fn label(&self) -> Option<u64> {
        self.label
    }

    /// Records one `stale:drop` event, if a journal is attached.
    fn journal_stale_drop(&self) {
        if let Some((j, kind)) = &self.journal {
            j.record(*kind);
        }
    }

    /// Current phase.
    pub fn phase(&self) -> SessionPhase {
        self.phase
    }

    /// The terminal error, once [`SessionPhase::Failed`] — unified over
    /// every layer that can kill a session (state machine, peer endpoint,
    /// transport, framing).
    pub fn error(&self) -> Option<&InpError> {
        self.error.as_ref()
    }

    /// The negotiated PADs (known from `PadDownload` onward; empty before).
    pub fn negotiated(&self) -> Option<&[PadMeta]> {
        (!self.pads.is_empty()).then_some(self.pads.as_slice())
    }

    /// Read access to the owned client (content cache, stats).
    pub fn client(&self) -> &FractalClient {
        &self.client
    }

    /// Takes the client back out of a finished session.
    pub fn into_client(self) -> FractalClient {
        self.client
    }

    /// Kicks the session off. Emits `INIT_REQ` — or, when the client's
    /// protocol cache already holds this application's PADs (the Figure 4
    /// fast path), skips negotiation entirely and emits the download or
    /// application requests directly.
    pub fn start(&mut self) -> Result<Vec<InpMessage>, SessionError> {
        if self.phase != SessionPhase::Init {
            return Err(SessionError::AlreadyStarted);
        }
        if let Some(pads) = self.client.cached_protocols(self.app_id) {
            self.pads = pads;
            return self.after_negotiation();
        }
        self.phase = SessionPhase::MetaExchange;
        Ok(vec![InpMessage::InitReq { app_id: self.app_id, payload: b"app-request".to_vec() }])
    }

    /// Feeds one framed message. Returns the message(s) to send, which the
    /// transport routes to the proxy, the PAD repository, or the server.
    ///
    /// Out-of-order, duplicate, and unknown messages return a typed error
    /// and leave the phase unchanged; framework failures (a PAD failing
    /// the acceptance gauntlet, the server rejecting the request) move the
    /// session to `Failed` terminally.
    pub fn on_message(&mut self, msg: &InpMessage) -> Result<Vec<InpMessage>, SessionError> {
        match (self.phase, msg) {
            (SessionPhase::MetaExchange, InpMessage::InitRep) if !self.init_acked => {
                self.init_acked = true;
                Ok(Vec::new())
            }
            (SessionPhase::MetaExchange, InpMessage::CliMetaReq) if self.init_acked => {
                self.phase = SessionPhase::PathSearch;
                let env = self.client.probe();
                Ok(vec![InpMessage::CliMetaRep { dev: env.dev, ntwk: env.ntwk }])
            }
            (SessionPhase::PathSearch, InpMessage::PadMetaRep { pads }) => {
                self.client.remember_protocols(self.app_id, pads);
                self.pads = pads.clone();
                self.after_negotiation()
            }
            (SessionPhase::PadDownload, InpMessage::PadDownloadRep { pad_id, bytes }) => {
                let Some(at) = self.pending.iter().position(|p| p.id == *pad_id) else {
                    if self.tolerates_stale {
                        // A pre-handoff download still in flight; drop it.
                        self.journal_stale_drop();
                        return Ok(Vec::new());
                    }
                    return Err(SessionError::UnexpectedPad(*pad_id));
                };
                let pad = self.pending.remove(at);
                if let Err(e) = self.client.deploy_pad(&pad, bytes) {
                    return self.fail(SessionError::Fractal(e));
                }
                if self.pending.is_empty() {
                    self.app_request()
                } else {
                    Ok(Vec::new())
                }
            }
            (
                SessionPhase::Sessioning,
                InpMessage::AppRep { content_id, version, protocol, payload },
            ) => {
                if self.tolerates_stale && *protocol != self.pads[0].protocol {
                    // A reply encoded with the pre-handoff PAD: decoding
                    // it with the renegotiated one would corrupt content.
                    self.journal_stale_drop();
                    return Ok(Vec::new());
                }
                if *content_id != self.content_id {
                    return Err(SessionError::WrongContent {
                        expected: self.content_id,
                        got: *content_id,
                    });
                }
                let pad_id = self.pads[0].id;
                let decoded = match self.client.decode_content(pad_id, *content_id, payload) {
                    Ok(d) => d,
                    Err(e) => return self.fail(SessionError::Fractal(e)),
                };
                self.client.store_content(*content_id, *version, decoded);
                self.phase = SessionPhase::Done;
                Ok(Vec::new())
            }
            (_, m) => {
                if self.tolerates_stale {
                    // Post-handoff, off-phase deliveries are expected:
                    // whatever the old generation left on the wire drains
                    // through here without failing the session.
                    self.journal_stale_drop();
                    return Ok(Vec::new());
                }
                Err(SessionError::UnexpectedMessage { phase: self.phase.name(), message: m.name() })
            }
        }
    }

    /// Rolls a live session back through negotiation after a mobility
    /// handoff: the client re-probes its (changed) environment, its
    /// protocol cache is invalidated, and a fresh `INIT_REQ` is emitted.
    /// From here on, replies from the pre-handoff generation that are
    /// still in flight are silently dropped rather than treated as
    /// protocol violations (see [`on_message`](Self::on_message)).
    pub fn renegotiate(&mut self, ntwk: NtwkMeta) -> Result<Vec<InpMessage>, SessionError> {
        if self.phase.is_terminal() || self.phase == SessionPhase::Init {
            return Err(SessionError::UnexpectedMessage {
                phase: self.phase.name(),
                message: "HANDOFF",
            });
        }
        self.client.handoff(ntwk);
        self.pads.clear();
        self.pending.clear();
        self.init_acked = false;
        self.tolerates_stale = true;
        self.phase = SessionPhase::MetaExchange;
        Ok(vec![InpMessage::InitReq {
            app_id: self.app_id,
            payload: b"handoff-renegotiate".to_vec(),
        }])
    }

    /// Terminates the session from outside — the transport saw an
    /// unrecoverable routing, framing, or peer failure (e.g. the proxy
    /// rejected our message, or the byte stream went bad). The first
    /// recorded error wins: a late stray delivery must not mask the root
    /// cause.
    pub fn abort(&mut self, error: impl Into<InpError>) {
        self.phase = SessionPhase::Failed;
        if self.error.is_none() {
            self.error = Some(error.into());
        }
    }

    /// Negotiation finished (from cache or PAD_META_REP): queue downloads
    /// for undeployed PADs or go straight to the application exchange.
    fn after_negotiation(&mut self) -> Result<Vec<InpMessage>, SessionError> {
        if self.pads.is_empty() {
            return self.fail(SessionError::Fractal(FractalError::NoFeasiblePath));
        }
        self.pending =
            self.pads.iter().filter(|p| !self.client.is_deployed(p.id)).cloned().collect();
        if self.pending.is_empty() {
            self.app_request()
        } else {
            self.phase = SessionPhase::PadDownload;
            Ok(self.pending.iter().map(|p| InpMessage::PadDownloadReq { pad_id: p.id }).collect())
        }
    }

    /// Emits `APP_REQ` and enters `Sessioning`.
    fn app_request(&mut self) -> Result<Vec<InpMessage>, SessionError> {
        self.phase = SessionPhase::Sessioning;
        let have = self.client.cached_content(self.content_id).map(|c| c.version);
        Ok(vec![InpMessage::AppReq {
            app_id: self.app_id,
            protocols: self.pads.iter().map(|p| p.protocol).collect(),
            payload: encode_app_payload(self.content_id, have, self.want_version),
        }])
    }

    fn fail(&mut self, error: SessionError) -> Result<Vec<InpMessage>, SessionError> {
        self.abort(error.clone());
        Err(error)
    }
}

/// Identifier of a session inside one reactor.
pub type SessionId = usize;

/// Progress summary of a completed [`Reactor::run`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReactorReport {
    /// Sessions that reached `Done`.
    pub completed: usize,
    /// Sessions that reached `Failed`.
    pub failed: usize,
    /// Message deliveries performed.
    pub polls: u64,
    /// Maximum number of simultaneously live (non-terminal) sessions.
    pub peak_in_flight: usize,
}

/// One stuck session in a [`ReactorStalled`] report: which phase it died
/// in **and** where its time went on the way there, so a stall diagnostic
/// distinguishes "never got past negotiation" from "downloaded for 2 s
/// then went quiet".
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StuckSession {
    /// The stuck session.
    pub id: SessionId,
    /// The phase it was stuck in when the stall was detected.
    pub phase: &'static str,
    /// Accumulated time per visited phase (name, nanoseconds), in protocol
    /// order, including time accrued in the current phase up to stall
    /// detection. Phases never entered are omitted.
    pub phase_ns: Vec<(&'static str, u64)>,
    /// Frames still queued behind full peer windows (both directions) at
    /// stall detection: 0 means protocol-stuck (nothing left to send),
    /// nonzero means transport-starved (the wire stopped draining).
    pub queue_depth: usize,
    /// The session's last journaled events (oldest first) when a flight
    /// recorder is attached — the causal history behind the bare phase
    /// name. Empty without a journal.
    pub recent: Vec<Event>,
}

/// The reactor stopped with live sessions, no deliverable frames, and no
/// bytes in flight — the event-driven equivalent of a deadlock, reported
/// instead of spun on. Sessions merely waiting on a simulated link are
/// *not* stalls: the run loop advances their pair clocks and keeps going;
/// only protocol-stuck sessions (nothing in flight in either direction)
/// end up here.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReactorStalled {
    /// The stuck sessions, their phases, and their per-phase timings.
    pub stuck: Vec<StuckSession>,
}

impl core::fmt::Display for ReactorStalled {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "reactor stalled with {} live session(s):", self.stuck.len())?;
        for s in &self.stuck {
            write!(f, " #{}@{} q={} [", s.id, s.phase, s.queue_depth)?;
            for (i, (name, ns)) in s.phase_ns.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{name}={ns}ns")?;
            }
            write!(f, "]")?;
            if !s.recent.is_empty() {
                write!(f, " last:")?;
                for e in &s.recent {
                    write!(f, " {}", e.kind)?;
                }
            }
        }
        Ok(())
    }
}

impl std::error::Error for ReactorStalled {}

/// The five timed (non-terminal) phases, indexed by
/// [`SessionPhase::timed_index`].
pub const TIMED_PHASES: [SessionPhase; 5] = [
    SessionPhase::Init,
    SessionPhase::MetaExchange,
    SessionPhase::PathSearch,
    SessionPhase::PadDownload,
    SessionPhase::Sessioning,
];

/// The five timed phases' histogram names, indexed by
/// [`SessionPhase::timed_index`].
pub const PHASE_METRICS: [&str; 5] = [
    "fractal_inp_phase_ns_init",
    "fractal_inp_phase_ns_meta_exchange",
    "fractal_inp_phase_ns_path_search",
    "fractal_inp_phase_ns_pad_download",
    "fractal_inp_phase_ns_sessioning",
];

/// Name of the backpressure gauge: frames queued per session awaiting
/// `writable()` budget, summed over the reactor's live sessions.
pub const TRANSPORT_QUEUE_METRIC: &str = "fractal_transport_queue_depth";

/// Pre-bound reactor metrics (no-ops unless the `telemetry` feature is
/// on): per-phase latency histograms plus the [`ReactorReport`] counters,
/// so the registry is the single source of truth for what the report
/// struct summarizes.
struct ReactorTelemetry {
    phase_ns: [fractal_telemetry::Histogram; 5],
    completed: fractal_telemetry::Counter,
    failed: fractal_telemetry::Counter,
    polls: fractal_telemetry::Counter,
    peak_in_flight: fractal_telemetry::Gauge,
    /// Outbound frames queued behind full peer windows, reactor-wide.
    queue_depth: fractal_telemetry::Gauge,
}

impl ReactorTelemetry {
    fn bind(bundle: &fractal_telemetry::Telemetry) -> ReactorTelemetry {
        ReactorTelemetry {
            phase_ns: std::array::from_fn(|i| bundle.histogram(PHASE_METRICS[i])),
            completed: bundle.counter("fractal_reactor_completed_total"),
            failed: bundle.counter("fractal_reactor_failed_total"),
            polls: bundle.counter("fractal_reactor_polls_total"),
            peak_in_flight: bundle.gauge("fractal_reactor_peak_in_flight"),
            queue_depth: bundle.gauge(TRANSPORT_QUEUE_METRIC),
        }
    }
}

/// Events of causal history a stall report carries per stuck session.
const STALL_TAIL_EVENTS: usize = 8;

/// Pre-bound flight-recorder kind ids — one interning pass when the
/// journal is attached, so the recording path never touches the label
/// table.
struct JournalKinds {
    /// `phase:<name>` per [`SessionPhase::journal_index`].
    phases: [KindId; 7],
    /// `handoff` — a mid-session mobility renegotiation.
    handoff: KindId,
    /// `stale:drop` — a tolerated post-handoff stale delivery.
    stale: KindId,
    /// `stall:mark` — the session was named in a stall report.
    stall: KindId,
}

impl JournalKinds {
    fn bind(journal: &Journal) -> JournalKinds {
        JournalKinds {
            phases: std::array::from_fn(|i| {
                journal.kind(&format!("phase:{}", ALL_PHASES[i].name()))
            }),
            handoff: journal.kind("handoff"),
            stale: journal.kind("stale:drop"),
            stall: journal.kind("stall:mark"),
        }
    }
}

/// Per-slot handle into a shared [`Tracer`]: the session's root span and
/// the open child span for its current phase.
struct SlotTrace {
    root: SpanId,
    current: Option<SpanId>,
}

/// Wire-clock milestones of one session, in the pair's simulated
/// microseconds (always 0 over the untimed loopback): when negotiation
/// ended (the session left `PathSearch`) and when the session reached a
/// terminal phase. This is what the throughput harness's per-link
/// negotiation-time rows report.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TransportTimes {
    /// Pair time when the session left `PathSearch` (negotiation done);
    /// `None` if it never entered or never left that phase (warm fast
    /// path, early failure).
    pub negotiated_us: Option<u64>,
    /// Pair time when the session reached `Done`/`Failed`.
    pub done_us: Option<u64>,
}

struct Slot {
    session: InpSession,
    /// Per-connection proxy-side state machine (Figure 4 order
    /// enforcement), negotiation delegated to the shared proxy.
    endpoint: ProxyEndpoint,
    /// The session's end of the byte pipe.
    client_end: Box<dyn Transport>,
    /// The reactor-service end of the byte pipe.
    service_end: Box<dyn Transport>,
    /// Reassembles service→client bytes into frames for the session.
    client_rx: Framer,
    /// Reassembles client→service bytes into frames for routing.
    service_rx: Framer,
    /// Client frames awaiting `writable()` budget.
    client_tx: SendQueue,
    /// Service frames awaiting `writable()` budget.
    service_tx: SendQueue,
    /// Last phase [`Reactor::sync_phase`] observed.
    last_phase: SessionPhase,
    /// Clock reading when `last_phase` was entered.
    phase_entered_ns: u64,
    /// Accumulated nanoseconds per timed phase
    /// ([`SessionPhase::timed_index`] order).
    phase_ns: [u64; 5],
    /// Wire-clock milestones (simulated µs).
    times: TransportTimes,
    trace: Option<SlotTrace>,
    /// Flight-recorder handle under the session's label (global id in a
    /// sharded run, slot id otherwise).
    journal: Option<SessionJournal>,
}

/// Poll-based reactor multiplexing many [`InpSession`]s over one shared
/// proxy + server + PAD repository, each session behind its own
/// [`Transport`] pair.
///
/// All three services are taken by shared reference: the proxy negotiates
/// through `&self` (lock-striped shards), the server serves through
/// `&self` (read-only between `publish` calls), and the repository is a
/// read-only map — so any number of reactors on any number of threads can
/// drive sessions against the *same* pair, which is exactly how the
/// throughput harness scales it. (A reactor itself stays on the thread
/// that built it: transport pairs are single-threaded by construction.)
pub struct Reactor<'a> {
    proxy: &'a AdaptationProxy,
    server: &'a ApplicationServer,
    pad_repo: &'a PadRepo,
    slots: Vec<Slot>,
    ready: VecDeque<SessionId>,
    /// Pair builder for [`spawn`](Self::spawn) (default: loopback).
    profile: TransportProfile,
    /// Checked framing: frames carry a weak-sum trailer and corrupted
    /// deliveries surface as [`FrameError::Corrupt`](crate::transport::FrameError::Corrupt).
    checksums: bool,
    polls: u64,
    peak_in_flight: usize,
    /// Time source for per-phase accounting. Never feature-gated: stall
    /// diagnostics carry real timings in every build.
    clock: SharedClock,
    tracer: Option<Arc<Tracer>>,
    tele: ReactorTelemetry,
    /// Flight recorder shared by every session this reactor drives
    /// (normally the shard's journal). Never feature-gated: like the
    /// clock, stall causality must work in every build.
    journal: Option<(Arc<Journal>, JournalKinds)>,
}

/// Every reactor knob in one builder, shared by [`Reactor`] and
/// [`ShardedReactor`](crate::shard::ShardedReactor) — new knobs land here
/// once instead of multiplying `with_*` constructors on both drivers.
///
/// A driver reads the knobs that apply to it and ignores the rest:
///
/// | knob | `Reactor` | `ShardedReactor` |
/// |---|---|---|
/// | [`transport`](Self::transport) | pair builder for `spawn` | — (pairs come from the acceptor) |
/// | [`frame_checksums`](Self::frame_checksums) | ✓ | ✓ (every shard) |
/// | [`clock`](Self::clock) | ✓ | — (see `virtual_time`) |
/// | [`tracer`](Self::tracer) | ✓ | — |
/// | [`telemetry`](Self::telemetry) | ✓ | — (per-shard registries) |
/// | [`journal`](Self::journal) | ✓ | — (per-shard journals) |
/// | [`stall_timeout`](Self::stall_timeout) | — (simulated-clock stall protocol) | ✓ |
/// | [`virtual_time`](Self::virtual_time) | — (use `clock`) | ✓ |
/// | [`journal_capacity`](Self::journal_capacity) | — (use `journal`) | ✓ |
/// | [`introspect`](Self::introspect) | — | ✓ |
#[derive(Default)]
pub struct ReactorConfig {
    pub(crate) transport: TransportProfile,
    pub(crate) frame_checksums: bool,
    pub(crate) clock: Option<SharedClock>,
    pub(crate) tracer: Option<Arc<Tracer>>,
    pub(crate) telemetry: Option<fractal_telemetry::Telemetry>,
    pub(crate) journal: Option<Arc<Journal>>,
    pub(crate) stall_timeout: Option<std::time::Duration>,
    pub(crate) virtual_tick: Option<u64>,
    pub(crate) journal_capacity: Option<usize>,
    #[cfg(unix)]
    pub(crate) introspect: Option<Arc<crate::introspect::IntrospectSource>>,
}

impl ReactorConfig {
    /// All defaults: loopback transport, unchecked framing, monotonic
    /// clock, process-global telemetry, no tracer/journal/introspection.
    pub fn new() -> ReactorConfig {
        ReactorConfig::default()
    }

    /// Replaces the transport profile used by [`Reactor::spawn`] — e.g.
    /// `LinkKind::Bluetooth` to put every session behind a simulated
    /// Bluetooth link.
    pub fn transport(mut self, profile: impl Into<TransportProfile>) -> ReactorConfig {
        self.transport = profile.into();
        self
    }

    /// Turns on checked framing for every pair the driver runs: each
    /// frame carries a weak-sum trailer, and a frame corrupted in flight
    /// fails its session with a typed
    /// [`FrameError::Corrupt`](crate::transport::FrameError::Corrupt)
    /// instead of being silently decoded. The adversity scenarios run
    /// with this on whenever corruption faults are injected.
    pub fn frame_checksums(mut self) -> ReactorConfig {
        self.frame_checksums = true;
        self
    }

    /// Replaces the per-phase accounting clock (tests use a
    /// [`VirtualClock`](fractal_telemetry::VirtualClock) so timings are a
    /// pure function of event order).
    pub fn clock(mut self, clock: SharedClock) -> ReactorConfig {
        self.clock = Some(clock);
        self
    }

    /// Attaches a span tracer: each session becomes a root span with one
    /// child span per phase. For deterministic traces, hand the tracer
    /// the same virtual clock as [`clock`](Self::clock).
    pub fn tracer(mut self, tracer: Arc<Tracer>) -> ReactorConfig {
        self.tracer = Some(tracer);
        self
    }

    /// Rebinds the reactor's metrics to an explicit telemetry bundle
    /// (default: the process-global one).
    pub fn telemetry(mut self, bundle: &fractal_telemetry::Telemetry) -> ReactorConfig {
        self.telemetry = Some(bundle.clone());
        self
    }

    /// Attaches a flight recorder: every session journals its phase
    /// transitions, handoffs, tolerated stale drops, and stall marks
    /// under its label ([`InpSession::with_label`], slot id by default).
    /// Stall reports then carry the last [`STALL_TAIL_EVENTS`] causal
    /// events per stuck session.
    pub fn journal(mut self, journal: Arc<Journal>) -> ReactorConfig {
        self.journal = Some(journal);
        self
    }

    /// Replaces the consecutive-quiet time after which a sharded driver
    /// with live sessions reports them stuck (default 5 s).
    pub fn stall_timeout(mut self, timeout: std::time::Duration) -> ReactorConfig {
        self.stall_timeout = Some(timeout);
        self
    }

    /// Puts every shard's telemetry *and* journal on its own
    /// [`VirtualClock`](fractal_telemetry::VirtualClock) starting at 0
    /// and advancing `tick` ns per reading, instead of real monotonic
    /// time. With `tick == 0` the timeline is pinned: every recorded
    /// timestamp is identical, so the merged journal becomes a pure
    /// function of the per-session event streams — byte-identical at any
    /// shard count.
    pub fn virtual_time(mut self, tick: u64) -> ReactorConfig {
        self.virtual_tick = Some(tick);
        self
    }

    /// Replaces each shard's flight-recorder ring capacity (default
    /// [`DEFAULT_JOURNAL_CAPACITY`](fractal_telemetry::journal::DEFAULT_JOURNAL_CAPACITY);
    /// rounded up to a power of two).
    pub fn journal_capacity(mut self, capacity: usize) -> ReactorConfig {
        self.journal_capacity = Some(capacity);
        self
    }

    /// Publishes a sharded run to a live introspection plane: every
    /// shard's registry + journal is attached before the shards spawn (so
    /// `/metrics` sees the run mid-flight), retired when they join, and
    /// stall diagnostics are pushed to `/stalls` as they surface.
    #[cfg(unix)]
    pub fn introspect(mut self, source: Arc<crate::introspect::IntrospectSource>) -> ReactorConfig {
        self.introspect = Some(source);
        self
    }
}

impl<'a> Reactor<'a> {
    /// Creates a reactor over the shared service trio with every knob at
    /// its [`ReactorConfig`] default (loopback transports, monotonic
    /// clock, global telemetry).
    pub fn new(
        proxy: &'a AdaptationProxy,
        server: &'a ApplicationServer,
        pad_repo: &'a PadRepo,
    ) -> Reactor<'a> {
        Reactor::with_config(proxy, server, pad_repo, ReactorConfig::new())
    }

    /// Creates a reactor over the shared service trio, configured by one
    /// [`ReactorConfig`]. Shard-only knobs (`stall_timeout`,
    /// `virtual_time`, `journal_capacity`, `introspect`) are ignored
    /// here — see the knob table on [`ReactorConfig`].
    pub fn with_config(
        proxy: &'a AdaptationProxy,
        server: &'a ApplicationServer,
        pad_repo: &'a PadRepo,
        config: ReactorConfig,
    ) -> Reactor<'a> {
        let tele = match &config.telemetry {
            Some(bundle) => ReactorTelemetry::bind(bundle),
            None => ReactorTelemetry::bind(&fractal_telemetry::Telemetry::global()),
        };
        Reactor {
            proxy,
            server,
            pad_repo,
            slots: Vec::new(),
            ready: VecDeque::new(),
            profile: config.transport,
            checksums: config.frame_checksums,
            polls: 0,
            peak_in_flight: 0,
            clock: config.clock.unwrap_or_else(MonotonicClock::shared),
            tracer: config.tracer,
            tele,
            journal: config.journal.map(|j| {
                let kinds = JournalKinds::bind(&j);
                (j, kinds)
            }),
        }
    }

    /// Admits a session on a fresh pair from the reactor's transport
    /// profile. The session is live immediately; nothing crosses the wire
    /// until [`poll`] (or [`run`]) pumps it.
    ///
    /// [`poll`]: Self::poll
    /// [`run`]: Self::run
    pub fn spawn(&mut self, session: InpSession) -> SessionId {
        let pair = self.profile.pair();
        self.spawn_on(session, pair)
    }

    /// Admits a session on an explicit transport pair: starts it and
    /// queues its opening frames on the client side of `pair`.
    pub fn spawn_on(&mut self, mut session: InpSession, pair: TransportPair) -> SessionId {
        let id = self.slots.len();
        // Clock read *before* start(): the Init phase gets a real duration
        // covering the session's opening work.
        let spawned_at = self.clock.now_ns();
        let opening = session.start().unwrap_or_default();
        let frames: Vec<Vec<u8>> = opening.iter().map(|m| self.encode(m)).collect();
        self.push_slot(session, pair, spawned_at);
        let slot = &mut self.slots[id];
        for frame in frames {
            slot.client_tx.push(frame);
        }
        self.ready.push_back(id);
        self.sync_phase(id);
        self.peak_in_flight = self.peak_in_flight.max(self.in_flight());
        self.tele.peak_in_flight.set_max(self.peak_in_flight as i64);
        id
    }

    /// Encodes one message per the reactor's framing mode.
    fn encode(&self, msg: &InpMessage) -> Vec<u8> {
        if self.checksums {
            Framer::frame_checked(msg)
        } else {
            Framer::frame(msg)
        }
    }

    /// A receive framer matching the reactor's framing mode.
    fn rx_framer(&self) -> Framer {
        if self.checksums {
            Framer::new().with_checksum()
        } else {
            Framer::new()
        }
    }

    fn push_slot(&mut self, mut session: InpSession, pair: TransportPair, spawned_at: u64) {
        let trace = self.tracer.as_ref().map(|tr| {
            let root = tr.root("session");
            let current = Some(tr.child(root, SessionPhase::Init.name()));
            SlotTrace { root, current }
        });
        let journal = self.journal.as_ref().map(|(journal, kinds)| {
            let label = session.label.unwrap_or(self.slots.len() as u64);
            let handle = journal.session(label);
            // The session records its own tolerated stale drops on the
            // same per-session stream.
            session.journal = Some((handle.clone(), kinds.stale));
            handle.record(kinds.phases[SessionPhase::Init.journal_index()]);
            handle
        });
        self.slots.push(Slot {
            session,
            endpoint: ProxyEndpoint::new(),
            client_end: pair.client,
            service_end: pair.service,
            client_rx: self.rx_framer(),
            service_rx: self.rx_framer(),
            client_tx: SendQueue::new(),
            service_tx: SendQueue::new(),
            last_phase: SessionPhase::Init,
            phase_entered_ns: spawned_at,
            phase_ns: [0; 5],
            times: TransportTimes::default(),
            trace,
            journal,
        });
    }

    /// Folds a session's phase change (if any) into the per-phase
    /// accounting: the time since the last transition is credited to the
    /// phase just left (a multi-phase jump credits the phase it started
    /// from), recorded in the phase histogram, and reflected in the span
    /// tree. Idempotent while the phase is unchanged.
    fn sync_phase(&mut self, id: SessionId) {
        let phase = self.slots[id].session.phase();
        if phase == self.slots[id].last_phase {
            return;
        }
        let now = self.clock.now_ns();
        let slot = &mut self.slots[id];
        let wire_now = slot.client_end.now_us();
        if slot.last_phase == SessionPhase::PathSearch {
            slot.times.negotiated_us = Some(wire_now);
        }
        if let Some(ix) = slot.last_phase.timed_index() {
            let spent = now.saturating_sub(slot.phase_entered_ns);
            slot.phase_ns[ix] += spent;
            self.tele.phase_ns[ix].record(spent);
        }
        if let (Some(handle), Some((_, kinds))) = (slot.journal.as_ref(), self.journal.as_ref()) {
            handle.record(kinds.phases[phase.journal_index()]);
        }
        if let (Some(tr), Some(t)) = (self.tracer.as_ref(), slot.trace.as_mut()) {
            if let Some(cur) = t.current.take() {
                tr.end(cur);
            }
            if phase.is_terminal() {
                tr.end(t.root);
            } else {
                t.current = Some(tr.child(t.root, phase.name()));
            }
        }
        if phase.is_terminal() {
            slot.times.done_us = Some(wire_now);
            match phase {
                SessionPhase::Done => self.tele.completed.inc(),
                _ => self.tele.failed.inc(),
            }
        }
        slot.last_phase = phase;
        slot.phase_entered_ns = now;
    }

    /// Fault-injection variant of [`spawn`](Self::spawn): the session is
    /// started but its opening frames are dropped, as if the transport
    /// lost `INIT_REQ`. The session then never progresses, and
    /// [`run`](Self::run) reports [`ReactorStalled`] — used by tests and
    /// by the deadlock-diagnostic path the CI smoke timeout depends on.
    pub fn spawn_lossy(&mut self, mut session: InpSession) -> SessionId {
        let id = self.slots.len();
        let spawned_at = self.clock.now_ns();
        let _dropped = session.start();
        self.push_slot(session, self.profile.pair(), spawned_at);
        self.sync_phase(id);
        self.peak_in_flight = self.peak_in_flight.max(self.in_flight());
        self.tele.peak_in_flight.set_max(self.peak_in_flight as i64);
        id
    }

    /// Number of live (non-terminal) sessions.
    pub fn in_flight(&self) -> usize {
        self.slots.iter().filter(|s| !s.session.phase().is_terminal()).count()
    }

    /// Maximum number of simultaneously live sessions seen so far.
    pub fn peak_in_flight(&self) -> usize {
        self.peak_in_flight
    }

    /// Frames queued for `id` (both directions) that have not fully
    /// reached the wire — the session's backpressure debt.
    pub fn pending_frames(&self, id: SessionId) -> usize {
        let s = &self.slots[id];
        s.client_tx.frames() + s.service_tx.frames()
    }

    /// Total queued frames across all sessions — exactly what the
    /// [`TRANSPORT_QUEUE_METRIC`] gauge reports after each poll.
    pub fn queued_frames(&self) -> usize {
        (0..self.slots.len()).map(|id| self.pending_frames(id)).sum()
    }

    /// Pumps the next ready session one readiness step: flush its pending
    /// frames (up to the peer's `writable()` budget), drain and route
    /// whatever the wire has delivered, and hand the session **at most
    /// one** reassembled frame. Returns the session that was pumped, or
    /// `None` when no session has actionable work (all done — or waiting
    /// on the wire/stalled, which [`run`](Self::run) distinguishes).
    ///
    /// One delivery per poll is what makes the multiplexing real: with N
    /// live sessions the reactor round-robins between them, so session 63
    /// negotiates while session 0 is mid-download.
    pub fn poll(&mut self) -> Option<SessionId> {
        let id = self.ready.pop_front()?;
        if self.slots[id].session.phase().is_terminal() {
            // The session ended (e.g. aborted on a routing failure) while
            // frames were still queued or in flight. Pumping them on would
            // only raise UnexpectedMessage over the recorded root cause;
            // tear the pipe down instead.
            self.teardown(id);
            self.sync_phase(id);
            self.tele.queue_depth.set(self.queued_frames() as i64);
            return Some(id);
        }
        if let Err(e) = self.pump(id) {
            self.slots[id].session.abort(e);
        }
        if self.slots[id].session.phase().is_terminal() {
            self.teardown(id);
        }
        self.sync_phase(id);
        self.tele.queue_depth.set(self.queued_frames() as i64);
        if !self.slots[id].session.phase().is_terminal() && self.has_actionable_work(id) {
            self.ready.push_back(id);
        }
        Some(id)
    }

    /// One readiness step for one session. Transport and framing failures
    /// bubble up as [`InpError`] and abort the session (first error wins).
    fn pump(&mut self, id: SessionId) -> Result<(), InpError> {
        // Client → wire: put pending frames on the wire, up to writable().
        {
            let s = &mut self.slots[id];
            s.client_tx.flush(s.client_end.as_mut())?;
        }
        // Wire → services: drain every readable byte, route every complete
        // frame to the party it addresses, queue the replies.
        {
            let s = &mut self.slots[id];
            s.service_rx.pull(s.service_end.as_mut())?;
        }
        while let Some(msg) = self.slots[id].service_rx.next_frame()? {
            let replies = self.serve(id, &msg).map_err(InpError::Session)?;
            let frames: Vec<Vec<u8>> = replies.iter().map(|r| self.encode(r)).collect();
            let s = &mut self.slots[id];
            for frame in frames {
                s.service_tx.push(frame);
            }
        }
        {
            let s = &mut self.slots[id];
            s.service_tx.flush(s.service_end.as_mut())?;
        }
        // Wire → session: drain the client end, deliver at most ONE frame.
        {
            let s = &mut self.slots[id];
            s.client_rx.pull(s.client_end.as_mut())?;
        }
        if let Some(msg) = self.slots[id].client_rx.next_frame()? {
            self.polls += 1;
            self.tele.polls.inc();
            match self.slots[id].session.on_message(&msg) {
                Ok(replies) => {
                    let frames: Vec<Vec<u8>> = replies.iter().map(|r| self.encode(r)).collect();
                    let s = &mut self.slots[id];
                    for frame in frames {
                        s.client_tx.push(frame);
                    }
                    s.client_tx.flush(s.client_end.as_mut())?;
                }
                // The wire delivered something the session cannot accept:
                // a routing bug or a duplicated frame. Dropping it would
                // stall the session silently; fail it loudly instead.
                Err(e) => self.slots[id].session.abort(e),
            }
        }
        Ok(())
    }

    /// Re-queues `id` for [`poll`](Self::poll) if it is live and has
    /// actionable work — how an external readiness driver (the sharded
    /// TCP front-end) feeds kernel events back into the poll loop.
    /// Idempotent per drain: an id already queued is not queued twice.
    pub fn enqueue_ready(&mut self, id: SessionId) {
        if !self.slots[id].session.phase().is_terminal()
            && self.has_actionable_work(id)
            && !self.ready.contains(&id)
        {
            self.ready.push_back(id);
        }
    }

    /// Registers every live session's socket-backed ends with `poller`:
    /// token `2·id` is the client end, `2·id + 1` the service end. Read
    /// interest is unconditional; write interest only where frames are
    /// queued (waking on an always-writable idle socket would busy-spin).
    /// Ends without a file descriptor (in-memory transports) are skipped —
    /// their readiness is intrinsic and [`poll`](Self::poll) sees it
    /// directly.
    #[cfg(unix)]
    pub fn register_interest(&self, poller: &mut crate::sys::Poller) {
        use crate::sys::Interest;
        for (id, s) in self.slots.iter().enumerate() {
            if s.session.phase().is_terminal() {
                continue;
            }
            if let Some(fd) = s.client_end.raw_fd() {
                let want_write = !s.client_tx.is_empty();
                poller.register(
                    fd,
                    2 * id,
                    if want_write { Interest::READ_WRITE } else { Interest::READ },
                );
            }
            if let Some(fd) = s.service_end.raw_fd() {
                let want_write = !s.service_tx.is_empty();
                poller.register(
                    fd,
                    2 * id + 1,
                    if want_write { Interest::READ_WRITE } else { Interest::READ },
                );
            }
        }
    }

    /// Feeds one kernel readiness event (token scheme of
    /// [`register_interest`](Self::register_interest)) into the matching
    /// transport end and re-queues the session if that made it actionable.
    #[cfg(unix)]
    pub fn apply_event(&mut self, ev: &crate::sys::Event) {
        let id = ev.token / 2;
        let Some(s) = self.slots.get_mut(id) else { return };
        if ev.token.is_multiple_of(2) {
            s.client_end.set_ready(ev.readable, ev.writable);
        } else {
            s.service_end.set_ready(ev.readable, ev.writable);
        }
        self.enqueue_ready(id);
    }

    /// Whether one more [`poll`](Self::poll) of `id` would make progress
    /// *right now*: pending frames with window to enter, readable bytes,
    /// or a complete (or known-bad) frame already buffered.
    fn has_actionable_work(&self, id: SessionId) -> bool {
        let s = &self.slots[id];
        (!s.client_tx.is_empty() && s.client_end.writable() > 0)
            || (!s.service_tx.is_empty() && s.service_end.writable() > 0)
            || s.client_end.readable() > 0
            || s.service_end.readable() > 0
            || s.client_rx.frame_ready()
            || s.service_rx.frame_ready()
    }

    /// Drops a terminal session's queued frames and buffered bytes and
    /// closes its pair. Stale in-flight replies must not reach a Failed
    /// session and overwrite its root-cause error.
    fn teardown(&mut self, id: SessionId) {
        let s = &mut self.slots[id];
        s.client_tx.clear();
        s.service_tx.clear();
        s.client_rx.clear();
        s.service_rx.clear();
        s.client_end.close();
    }

    /// Polls until every session is terminal. When every live session is
    /// merely transport-starved (bytes in flight on a timed link), the
    /// pair clocks advance — each to its *own* next delivery instant, so
    /// a session's wire timeline stays a pure function of its own traffic
    /// — and polling resumes. Only when no bytes are in flight anywhere
    /// does the reactor return [`ReactorStalled`] (wrapped in
    /// [`InpError`]) naming the protocol-stuck sessions.
    pub fn run(&mut self) -> Result<ReactorReport, InpError> {
        self.run_until(|_| false)
    }

    /// [`run`](Self::run) with an external stop predicate checked before
    /// every poll — how a driver interleaves its own actions (e.g. firing
    /// a mid-session [`handoff`](Self::handoff) once a session reaches a
    /// given phase) with the event loop. Returns the in-progress report
    /// as soon as `stop` fires; the reactor can be run again afterwards.
    pub fn run_until(
        &mut self,
        mut stop: impl FnMut(&Reactor<'a>) -> bool,
    ) -> Result<ReactorReport, InpError> {
        loop {
            loop {
                if stop(self) {
                    return Ok(self.report());
                }
                if self.poll().is_none() {
                    break;
                }
            }
            if self.in_flight() == 0 {
                break;
            }
            let mut advanced = false;
            for id in 0..self.slots.len() {
                let s = &mut self.slots[id];
                if s.session.phase().is_terminal() {
                    continue;
                }
                let next = match (s.client_end.next_ready_at(), s.service_end.next_ready_at()) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                if let Some(t) = next {
                    s.client_end.advance_to(t);
                    s.service_end.advance_to(t);
                    advanced = true;
                }
            }
            if !advanced {
                return Err(self.stall_report().into());
            }
            for id in 0..self.slots.len() {
                if !self.slots[id].session.phase().is_terminal() && self.has_actionable_work(id) {
                    self.ready.push_back(id);
                }
            }
        }
        Ok(self.report())
    }

    /// The progress summary as of now — what [`run`](Self::run) returns on
    /// completion, available to external drive loops (the sharded TCP
    /// front-end) that pump via [`poll`](Self::poll) directly.
    pub fn report(&self) -> ReactorReport {
        ReactorReport {
            completed: self
                .slots
                .iter()
                .filter(|s| s.session.phase() == SessionPhase::Done)
                .count(),
            failed: self.slots.iter().filter(|s| s.session.phase() == SessionPhase::Failed).count(),
            polls: self.polls,
            peak_in_flight: self.peak_in_flight,
        }
    }

    /// Builds the protocol-stuck diagnostic for every live session —
    /// public so external drive loops with their own quiescence detection
    /// (kernel-poll timeouts instead of simulated clocks) report the same
    /// typed stall as [`run`](Self::run).
    pub fn stall_report(&self) -> ReactorStalled {
        let now = self.clock.now_ns();
        let stuck = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.session.phase().is_terminal())
            .map(|(id, s)| {
                // Accrue the open phase up to stall detection, then keep
                // only the phases the session actually visited.
                let mut per_phase = s.phase_ns;
                if let Some(ix) = s.last_phase.timed_index() {
                    per_phase[ix] += now.saturating_sub(s.phase_entered_ns);
                }
                let phase_ns = per_phase
                    .iter()
                    .enumerate()
                    .filter(|&(_, &ns)| ns > 0)
                    .map(|(ix, &ns)| (TIMED_PHASES[ix].name(), ns))
                    .collect();
                // Mark the stall on the session's own event stream, then
                // pull its recent causal history (the mark included).
                let recent = match (s.journal.as_ref(), self.journal.as_ref()) {
                    (Some(handle), Some((journal, kinds))) => {
                        handle.record(kinds.stall);
                        journal.tail(handle.session(), STALL_TAIL_EVENTS)
                    }
                    _ => Vec::new(),
                };
                StuckSession {
                    id,
                    phase: s.session.phase().name(),
                    phase_ns,
                    queue_depth: self.pending_frames(id),
                    recent,
                }
            })
            .collect();
        ReactorStalled { stuck }
    }

    /// Read access to a session.
    pub fn session(&self, id: SessionId) -> &InpSession {
        &self.slots[id].session
    }

    /// Fires a mid-session mobility handoff on `id`: the client's link
    /// changed to `ntwk`, so the session rolls back through negotiation
    /// ([`InpSession::renegotiate`]) and the proxy-side endpoint rewinds
    /// to await the fresh `INIT_REQ` on the same connection. Replies from
    /// the old generation still in flight are drained and dropped by the
    /// session. The caller is responsible for repricing the wire itself
    /// (e.g. [`LinkHandoff::switch`](crate::transport::LinkHandoff::switch)).
    pub fn handoff(&mut self, id: SessionId, ntwk: NtwkMeta) -> Result<(), InpError> {
        let msgs = self.slots[id].session.renegotiate(ntwk).map_err(InpError::Session)?;
        let frames: Vec<Vec<u8>> = msgs.iter().map(|m| self.encode(m)).collect();
        let slot = &mut self.slots[id];
        slot.endpoint.reset();
        for frame in frames {
            slot.client_tx.push(frame);
        }
        if let (Some(handle), Some((_, kinds))) = (slot.journal.as_ref(), self.journal.as_ref()) {
            handle.record(kinds.handoff);
        }
        self.sync_phase(id);
        self.enqueue_ready(id);
        Ok(())
    }

    /// The session's wire-clock milestones (simulated µs on its pair):
    /// when negotiation finished and when the session ended. Always 0 over
    /// the untimed loopback; over a
    /// [`SimLinkTransport`](crate::transport::SimLinkTransport) these are
    /// the per-link negotiation/session times the throughput harness
    /// reports.
    pub fn transport_times(&self, id: SessionId) -> TransportTimes {
        self.slots[id].times
    }

    /// Accumulated time per visited phase for one session (name,
    /// nanoseconds, protocol order), including the currently open phase up
    /// to now. This is the same accounting [`ReactorStalled`] reports for
    /// stuck sessions.
    pub fn phase_timings(&self, id: SessionId) -> Vec<(&'static str, u64)> {
        let s = &self.slots[id];
        let mut per_phase = s.phase_ns;
        if let Some(ix) = s.last_phase.timed_index() {
            per_phase[ix] += self.clock.now_ns().saturating_sub(s.phase_entered_ns);
        }
        per_phase
            .iter()
            .enumerate()
            .filter(|&(_, &ns)| ns > 0)
            .map(|(ix, &ns)| (TIMED_PHASES[ix].name(), ns))
            .collect()
    }

    /// Consumes the reactor, returning every session in spawn order.
    pub fn into_sessions(self) -> Vec<InpSession> {
        self.slots.into_iter().map(|s| s.session).collect()
    }

    /// Routes one client-emitted frame to the party it addresses and
    /// returns the replies to put back on the wire.
    fn serve(&mut self, id: SessionId, msg: &InpMessage) -> Result<Vec<InpMessage>, SessionError> {
        match msg {
            InpMessage::InitReq { .. } | InpMessage::CliMetaRep { .. } => self.proxy_leg(id, msg),
            InpMessage::PadDownloadReq { pad_id } => match self.pad_repo.get(*pad_id) {
                Some(wire) => Ok(vec![InpMessage::PadDownloadRep { pad_id: *pad_id, bytes: wire }]),
                None => Err(SessionError::Fractal(FractalError::PadUnavailable(*pad_id))),
            },
            InpMessage::AppReq { protocols, payload, .. } => self.server_leg(protocols, payload),
            other => Err(SessionError::UnexpectedMessage { phase: "route", message: other.name() }),
        }
    }

    /// The adaptation-proxy legs (INIT_REQ, CLI_META_REP), with the path
    /// search delegated to the shared sharded proxy.
    fn proxy_leg(
        &mut self,
        id: SessionId,
        msg: &InpMessage,
    ) -> Result<Vec<InpMessage>, SessionError> {
        let mut search_err: Option<FractalError> = None;
        let proxy = self.proxy;
        let out =
            self.slots[id].endpoint.on_message(msg, |app, env| match proxy.negotiate(app, env) {
                Ok(pads) => pads,
                Err(e) => {
                    search_err = Some(e);
                    Vec::new()
                }
            });
        if let Some(e) = search_err {
            return Err(SessionError::Fractal(e));
        }
        out.map_err(SessionError::Peer)
    }

    /// The application-server leg (APP_REQ → APP_REP) against the shared
    /// `&self` server.
    fn server_leg(
        &self,
        protocols: &[fractal_protocols::ProtocolId],
        payload: &[u8],
    ) -> Result<Vec<InpMessage>, SessionError> {
        let (content_id, have, want) =
            decode_app_payload(payload).map_err(|e| SessionError::Fractal(e.into()))?;
        let protocol =
            *protocols.first().ok_or(SessionError::Fractal(FractalError::NoFeasiblePath))?;
        let resp =
            self.server.respond(content_id, have, want, protocol).map_err(SessionError::Fractal)?;
        Ok(vec![InpMessage::AppRep {
            content_id,
            version: want,
            protocol: resp.protocol,
            payload: resp.payload,
        }])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::ClientClass;
    use crate::server::AdaptiveContentMode;
    use crate::testbed::Testbed;
    use fractal_net::LinkKind;

    fn content(seed: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i / 5) as u8).wrapping_mul(seed).wrapping_add(seed)).collect()
    }

    fn testbed_with_pages(n: u32) -> Testbed {
        let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
        for id in 0..n {
            tb.server.publish(id, content(id as u8 + 1, 9_000));
        }
        tb
    }

    #[test]
    fn one_session_completes_end_to_end() {
        let tb = testbed_with_pages(1);
        let mut reactor = Reactor::new(&tb.proxy, &tb.server, &tb.pad_repo);
        let id =
            reactor.spawn(InpSession::new(tb.client(ClientClass::PdaBluetooth), tb.app_id, 0, 0));
        let report = reactor.run().unwrap();
        assert_eq!(report.completed, 1);
        assert_eq!(report.failed, 0);
        let session = reactor.session(id);
        assert_eq!(session.phase(), SessionPhase::Done);
        let got = session.client().cached_content(0).expect("content stored");
        assert_eq!(got.bytes, tb.server.content(0, 0).unwrap());
    }

    #[test]
    fn many_sessions_interleave_over_one_shared_pair() {
        const N: u32 = 32;
        let tb = testbed_with_pages(N);
        let mut reactor = Reactor::new(&tb.proxy, &tb.server, &tb.pad_repo);
        for i in 0..N {
            let class = ClientClass::ALL[i as usize % 3];
            reactor.spawn(InpSession::new(tb.client(class), tb.app_id, i, 0));
        }
        assert_eq!(reactor.in_flight(), N as usize, "all sessions live before polling");
        let report = reactor.run().unwrap();
        assert_eq!(report.completed, N as usize);
        assert_eq!(report.peak_in_flight, N as usize);
        // Every session decoded its own page through the shared server.
        for (i, s) in reactor.into_sessions().into_iter().enumerate() {
            let client = s.into_client();
            assert_eq!(
                client.cached_content(i as u32).unwrap().bytes,
                tb.server.content(i as u32, 0).unwrap(),
                "session {i}"
            );
        }
    }

    #[test]
    fn reactor_decisions_match_direct_negotiation() {
        let tb = testbed_with_pages(3);
        let oracle_tb = testbed_with_pages(3);
        let mut reactor = Reactor::new(&tb.proxy, &tb.server, &tb.pad_repo);
        let ids: Vec<_> = ClientClass::ALL
            .iter()
            .map(|&c| reactor.spawn(InpSession::new(tb.client(c), tb.app_id, 0, 0)))
            .collect();
        reactor.run().unwrap();
        for (&id, &class) in ids.iter().zip(ClientClass::ALL.iter()) {
            let expect = oracle_tb.proxy.negotiate(oracle_tb.app_id, class.env()).unwrap();
            assert_eq!(reactor.session(id).negotiated().unwrap(), expect.as_slice(), "{class}");
        }
    }

    #[test]
    fn simlink_sessions_complete_with_the_same_decisions() {
        let tb = testbed_with_pages(3);
        // Oracle: the same classes over the untimed loopback.
        let loop_tb = testbed_with_pages(3);
        let mut oracle = Reactor::new(&loop_tb.proxy, &loop_tb.server, &loop_tb.pad_repo);
        let oracle_ids: Vec<_> = ClientClass::ALL
            .iter()
            .map(|&c| oracle.spawn(InpSession::new(loop_tb.client(c), loop_tb.app_id, 0, 0)))
            .collect();
        oracle.run().unwrap();

        let mut reactor = tb.reactor_with(ReactorConfig::new().transport(LinkKind::Bluetooth));
        let ids: Vec<_> = ClientClass::ALL
            .iter()
            .map(|&c| reactor.spawn(InpSession::new(tb.client(c), tb.app_id, 0, 0)))
            .collect();
        let report = reactor.run().unwrap();
        assert_eq!(report.failed, 0);
        for (&id, &oid) in ids.iter().zip(oracle_ids.iter()) {
            assert_eq!(
                reactor.session(id).negotiated().unwrap(),
                oracle.session(oid).negotiated().unwrap(),
                "byte-gated delivery must not change adaptation decisions"
            );
            // The simulated wire clock moved: negotiation took real link
            // time and the session finished after it.
            let times = reactor.transport_times(id);
            let negotiated = times.negotiated_us.expect("cold session negotiates");
            let done = times.done_us.expect("session finished");
            assert!(negotiated > 0, "negotiation costs link time");
            assert!(done > negotiated, "PAD download + app exchange cost more");
            // Loopback sessions report zero wire time.
            assert_eq!(oracle.transport_times(oid).done_us, Some(0));
        }
    }

    #[test]
    fn simlink_wire_times_are_deterministic_and_link_ordered() {
        let time_for = |kind: LinkKind| {
            let tb = testbed_with_pages(1);
            let mut reactor = tb.reactor_with(ReactorConfig::new().transport(kind));
            let id = reactor.spawn(InpSession::new(
                tb.client(ClientClass::PdaBluetooth),
                tb.app_id,
                0,
                0,
            ));
            reactor.run().unwrap();
            reactor.transport_times(id).done_us.unwrap()
        };
        assert_eq!(time_for(LinkKind::Wlan), time_for(LinkKind::Wlan), "deterministic");
        assert!(
            time_for(LinkKind::Lan) < time_for(LinkKind::Wlan)
                && time_for(LinkKind::Wlan) < time_for(LinkKind::Bluetooth),
            "slower links take longer in simulated time"
        );
    }

    #[test]
    fn tiny_window_forces_backpressure_but_sessions_still_complete() {
        let tb = testbed_with_pages(2);
        // A 64-byte window: every PAD frame (multi-KB) crosses in dozens
        // of partial writes and the send queues are exercised hard.
        let mut reactor = tb.reactor_with(
            ReactorConfig::new().transport(TransportProfile::Loopback { capacity: 64 }),
        );
        for i in 0..2u32 {
            reactor.spawn(InpSession::new(tb.client(ClientClass::LaptopWlan), tb.app_id, i, 0));
        }
        assert!(reactor.queued_frames() > 0, "openings queue behind the tiny window");
        let report = reactor.run().unwrap();
        assert_eq!(report.completed, 2);
        assert_eq!(reactor.queued_frames(), 0, "queues drain by completion");
    }

    #[test]
    fn warm_client_takes_the_fast_path() {
        let tb = testbed_with_pages(2);
        // First session: cold — negotiate + download.
        let mut reactor = Reactor::new(&tb.proxy, &tb.server, &tb.pad_repo);
        let id =
            reactor.spawn(InpSession::new(tb.client(ClientClass::LaptopWlan), tb.app_id, 0, 0));
        reactor.run().unwrap();
        let client = reactor.into_sessions().remove(id).into_client();
        let negotiations = client.stats().negotiations;
        assert_eq!(negotiations, 1);

        // Second session reuses the client: protocol cache + deployed PAD
        // mean start() emits APP_REQ immediately, skipping negotiation and
        // download. Drive the single remaining leg by hand.
        let mut warm = InpSession::new(client, tb.app_id, 1, 0);
        let opening = warm.start().unwrap();
        assert_eq!(warm.phase(), SessionPhase::Sessioning);
        assert_eq!(opening.len(), 1);
        let InpMessage::AppReq { protocols, payload, .. } = &opening[0] else {
            panic!("fast path must emit APP_REQ, got {}", opening[0].name());
        };
        assert_eq!(warm.start().unwrap_err(), SessionError::AlreadyStarted);

        let (content_id, have, want) = decode_app_payload(payload).unwrap();
        assert_eq!((content_id, have, want), (1, None, 0));
        let resp = tb.server.respond(content_id, have, want, protocols[0]).unwrap();
        let rep = InpMessage::AppRep {
            content_id,
            version: want,
            protocol: resp.protocol,
            payload: resp.payload,
        };
        assert!(warm.on_message(&rep).unwrap().is_empty());
        assert_eq!(warm.phase(), SessionPhase::Done);

        let client = warm.into_client();
        assert_eq!(client.stats().negotiations, 1, "no re-negotiation");
        assert_eq!(client.cached_content(1).unwrap().bytes, tb.server.content(1, 0).unwrap());
    }

    #[test]
    fn unknown_app_fails_session_with_typed_error() {
        let tb = testbed_with_pages(1);
        let mut reactor = Reactor::new(&tb.proxy, &tb.server, &tb.pad_repo);
        let id =
            reactor.spawn(InpSession::new(tb.client(ClientClass::DesktopLan), AppId(99), 0, 0));
        let report = reactor.run().unwrap();
        assert_eq!(report.failed, 1);
        assert!(matches!(
            reactor.session(id).error(),
            Some(InpError::Session(SessionError::Fractal(FractalError::UnknownApp(AppId(99)))))
        ));
    }

    #[test]
    fn missing_pad_fails_session_not_reactor() {
        let tb = testbed_with_pages(1);
        tb.pad_repo.clear();
        let mut reactor = Reactor::new(&tb.proxy, &tb.server, &tb.pad_repo);
        let id =
            reactor.spawn(InpSession::new(tb.client(ClientClass::DesktopLan), tb.app_id, 0, 0));
        let report = reactor.run().unwrap();
        assert_eq!(report.failed, 1);
        assert!(matches!(
            reactor.session(id).error(),
            Some(InpError::Session(SessionError::Fractal(FractalError::PadUnavailable(_))))
        ));
    }

    #[test]
    fn stale_delivery_to_failed_session_keeps_root_cause() {
        let tb = testbed_with_pages(1);
        let mut reactor = Reactor::new(&tb.proxy, &tb.server, &tb.pad_repo);
        let id =
            reactor.spawn(InpSession::new(tb.client(ClientClass::PdaBluetooth), tb.app_id, 0, 0));
        // spawn() queued the framed INIT_REQ; it has not crossed yet.
        assert!(reactor.pending_frames(id) > 0, "spawn queues the opening frame");
        // The transport fails the session while that frame is in flight
        // (e.g. a later leg could not be served).
        let root = InpError::Session(SessionError::Fractal(FractalError::PadUnavailable(
            crate::meta::PadId(7),
        )));
        reactor.slots[id].session.abort(root.clone());
        // Draining must tear the pipe down — not pump the stale frame
        // through and overwrite the root cause with
        // UnexpectedMessage{phase: "Failed"}.
        let report = reactor.run().unwrap();
        assert_eq!(report.failed, 1);
        assert_eq!(reactor.pending_frames(id), 0, "stale frames dropped");
        assert!(reactor.slots[id].client_end.is_closed(), "pair closed on teardown");
        assert_eq!(reactor.session(id).error(), Some(&root));
    }

    #[test]
    fn lost_opening_is_reported_as_stall_not_hang() {
        let tb = testbed_with_pages(2);
        let mut reactor = Reactor::new(&tb.proxy, &tb.server, &tb.pad_repo);
        reactor.spawn(InpSession::new(tb.client(ClientClass::DesktopLan), tb.app_id, 0, 0));
        let stuck_id = reactor.spawn_lossy(InpSession::new(
            tb.client(ClientClass::DesktopLan),
            tb.app_id,
            1,
            0,
        ));
        let InpError::Stalled(err) = reactor.run().unwrap_err() else {
            panic!("quiescent live session must surface as InpError::Stalled");
        };
        assert_eq!(err.stuck.len(), 1);
        assert_eq!(err.stuck[0].id, stuck_id);
        assert_eq!(err.stuck[0].phase, "MetaExchange");
        // The diagnostic says where the stuck session's time went: it
        // visited Init and then sat in MetaExchange until stall detection.
        let phases: Vec<&str> = err.stuck[0].phase_ns.iter().map(|(n, _)| *n).collect();
        assert!(phases.contains(&"MetaExchange"), "{phases:?}");
        assert!(err.to_string().contains("MetaExchange"));
        assert!(err.to_string().contains("ns"));
        // The healthy session still completed.
        assert_eq!(reactor.session(0).phase(), SessionPhase::Done);
    }

    #[test]
    fn stall_report_carries_deterministic_phase_timings_under_virtual_clock() {
        use fractal_telemetry::VirtualClock;
        let tb = testbed_with_pages(1);
        let mut reactor = tb.reactor_with(ReactorConfig::new().clock(VirtualClock::shared(100)));
        let id = reactor.spawn_lossy(InpSession::new(
            tb.client(ClientClass::DesktopLan),
            tb.app_id,
            0,
            0,
        ));
        let InpError::Stalled(err) = reactor.run().unwrap_err() else {
            panic!("lossy spawn must stall");
        };
        assert_eq!(err.stuck[0].id, id);
        // Virtual clock: spawn reads t=0, the Init→MetaExchange sync reads
        // t=100, stall detection reads t=200 — Init gets 100 ns, the stuck
        // MetaExchange gets 100 ns, every run.
        assert_eq!(err.stuck[0].phase_ns, vec![("Init", 100), ("MetaExchange", 100)]);
    }

    #[test]
    fn phase_timings_cover_all_five_phases_for_a_cold_session() {
        use fractal_telemetry::VirtualClock;
        let tb = testbed_with_pages(1);
        let mut reactor = tb.reactor_with(ReactorConfig::new().clock(VirtualClock::shared(10)));
        let id =
            reactor.spawn(InpSession::new(tb.client(ClientClass::PdaBluetooth), tb.app_id, 0, 0));
        reactor.run().unwrap();
        let timings = reactor.phase_timings(id);
        let names: Vec<&str> = timings.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            ["Init", "MetaExchange", "PathSearch", "PadDownload", "Sessioning"],
            "a cold session visits every timed phase"
        );
        assert!(timings.iter().all(|&(_, ns)| ns > 0));
    }

    #[test]
    fn session_span_tree_is_deterministic_under_virtual_clock() {
        use fractal_telemetry::{Tracer, VirtualClock};
        let run_once = || {
            let tb = testbed_with_pages(2);
            let clock = VirtualClock::shared(10);
            let tracer = std::sync::Arc::new(Tracer::new(std::sync::Arc::clone(&clock)));
            let mut reactor = tb.reactor_with(
                ReactorConfig::new().clock(clock).tracer(std::sync::Arc::clone(&tracer)),
            );
            for i in 0..2u32 {
                reactor.spawn(InpSession::new(tb.client(ClientClass::LaptopWlan), tb.app_id, i, 0));
            }
            reactor.run().unwrap();
            tracer.render()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "same event order ⇒ byte-identical trace");
        // Both sessions produced a full phase chain under their roots.
        assert_eq!(a.matches("session start=").count(), 2);
        assert_eq!(a.matches("  PathSearch start=").count(), 2);
        assert!(!a.contains("dur=open"), "every span closed:\n{a}");
    }

    #[test]
    fn handoff_renegotiates_against_the_new_environment_oracle() {
        let tb = testbed_with_pages(1);
        let oracle_tb = testbed_with_pages(1);
        let mut reactor = Reactor::new(&tb.proxy, &tb.server, &tb.pad_repo);
        let id =
            reactor.spawn(InpSession::new(tb.client(ClientClass::LaptopWlan), tb.app_id, 0, 0));
        // Drive until the session is deep in flight, then walk out of
        // WLAN range: the PDA-class Bluetooth link takes over.
        reactor.run_until(|r| r.session(id).phase() == SessionPhase::Sessioning).unwrap();
        assert_eq!(reactor.session(id).phase(), SessionPhase::Sessioning);
        let new_ntwk = ClientClass::PdaBluetooth.env().ntwk;
        reactor.handoff(id, new_ntwk).unwrap();
        assert_eq!(reactor.session(id).phase(), SessionPhase::MetaExchange, "rolled back");
        let report = reactor.run().unwrap();
        assert_eq!((report.completed, report.failed), (1, 0));
        // The re-negotiated decision matches the serial oracle for the
        // NEW environment, and the client really negotiated twice.
        let mut env = ClientClass::LaptopWlan.env();
        env.ntwk = new_ntwk;
        let expect = oracle_tb.proxy.negotiate(oracle_tb.app_id, env).unwrap();
        assert_eq!(reactor.session(id).negotiated().unwrap(), expect.as_slice());
        assert_eq!(reactor.session(id).client().stats().negotiations, 2);
        assert_eq!(
            reactor.session(id).client().cached_content(0).unwrap().bytes,
            tb.server.content(0, 0).unwrap(),
            "content decoded with the renegotiated protocol"
        );
    }

    #[test]
    fn handoff_rejected_on_terminal_or_unstarted_sessions() {
        let tb = testbed_with_pages(1);
        let new_ntwk = ClientClass::PdaBluetooth.env().ntwk;
        let mut done = InpSession::new(tb.client(ClientClass::DesktopLan), tb.app_id, 0, 0);
        done.abort(InpError::Session(SessionError::AlreadyStarted));
        assert!(done.renegotiate(new_ntwk).is_err(), "terminal sessions cannot renegotiate");
        let mut fresh = InpSession::new(tb.client(ClientClass::DesktopLan), tb.app_id, 0, 0);
        assert!(fresh.renegotiate(new_ntwk).is_err(), "unstarted sessions cannot renegotiate");
    }

    #[test]
    fn checked_framing_completes_sessions_end_to_end() {
        const N: u32 = 4;
        let tb = testbed_with_pages(N);
        let mut reactor = tb.reactor_with(ReactorConfig::new().frame_checksums());
        for i in 0..N {
            let class = ClientClass::ALL[i as usize % 3];
            reactor.spawn(InpSession::new(tb.client(class), tb.app_id, i, 0));
        }
        let report = reactor.run().unwrap();
        assert_eq!((report.completed, report.failed), (N as usize, 0));
    }

    #[test]
    fn corrupted_frames_fail_sessions_with_typed_errors_never_silently() {
        use crate::fault::FaultPlan;
        use crate::transport::{FrameError, LoopbackTransport};
        const N: usize = 8;
        let tb = testbed_with_pages(N as u32);
        let mut reactor = tb.reactor_with(ReactorConfig::new().frame_checksums());
        let plan = FaultPlan::new(0xC0FFEE).with_corrupt(400);
        let mut ids = Vec::new();
        for i in 0..N {
            let (pair, _log) = plan.for_session(i as u64).wrap_pair(LoopbackTransport::pair(4096));
            let class = ClientClass::ALL[i % 3];
            ids.push(
                reactor.spawn_on(InpSession::new(tb.client(class), tb.app_id, i as u32, 0), pair),
            );
        }
        // A corrupted length byte can leave a frame forever incomplete —
        // that surfaces as a typed stall, which is also acceptable.
        match reactor.run() {
            Ok(_) | Err(InpError::Stalled(_)) => {}
            Err(e) => panic!("only typed completion or stall allowed, got {e}"),
        }
        let mut caught = 0;
        for &id in &ids {
            match reactor.session(id).phase() {
                SessionPhase::Done => {
                    // Completed despite the adversary: content must be exact.
                    assert_eq!(
                        reactor.session(id).client().cached_content(id as u32).unwrap().bytes,
                        tb.server.content(id as u32, 0).unwrap(),
                        "session {id} completed with corrupted content"
                    );
                }
                SessionPhase::Failed => {
                    let err = reactor.session(id).error().expect("typed error");
                    if matches!(err, InpError::Frame(FrameError::Corrupt { .. })) {
                        caught += 1;
                    }
                }
                _ => {} // protocol-stuck after a length-byte flip: typed stall above
            }
        }
        assert!(caught > 0, "40% corruption must trip the checksum at least once");
    }

    #[test]
    fn app_payload_round_trip() {
        for have in [None, Some(0), Some(7)] {
            let bytes = encode_app_payload(42, have, 9);
            assert_eq!(decode_app_payload(&bytes).unwrap(), (42, have, 9));
        }
        assert!(decode_app_payload(&[1, 2]).is_err());
        let mut bad = encode_app_payload(1, None, 2);
        bad.push(0);
        assert_eq!(decode_app_payload(&bad), Err(WireError::TrailingBytes));
    }

    #[test]
    fn journal_records_full_phase_chain_per_session() {
        use fractal_telemetry::VirtualClock;
        let tb = testbed_with_pages(2);
        let journal = Arc::new(Journal::new(256).with_clock(VirtualClock::shared(1)));
        let mut reactor = tb.reactor_with(
            ReactorConfig::new().clock(VirtualClock::shared(1)).journal(Arc::clone(&journal)),
        );
        for i in 0..2u32 {
            reactor.spawn(InpSession::new(tb.client(ClientClass::LaptopWlan), tb.app_id, i, 0));
        }
        reactor.run().unwrap();
        let snap = journal.snapshot();
        assert_eq!(snap.sessions(), vec![0, 1], "slot-id labels by default");
        for session in 0..2u64 {
            let tail = snap.tail(session, 16);
            let kinds: Vec<&str> = tail.iter().map(|e| e.kind.as_str()).collect();
            assert_eq!(
                kinds,
                [
                    "phase:Init",
                    "phase:MetaExchange",
                    "phase:PathSearch",
                    "phase:PadDownload",
                    "phase:Sessioning",
                    "phase:Done"
                ],
                "session {session}"
            );
        }
    }

    #[test]
    fn journal_uses_caller_labels_and_marks_handoffs() {
        let tb = testbed_with_pages(1);
        let journal = Arc::new(Journal::new(128));
        let mut reactor = tb.reactor_with(ReactorConfig::new().journal(Arc::clone(&journal)));
        let id = reactor.spawn(
            InpSession::new(tb.client(ClientClass::LaptopWlan), tb.app_id, 0, 0).with_label(4711),
        );
        reactor.run_until(|r| r.session(id).phase() == SessionPhase::Sessioning).unwrap();
        reactor.handoff(id, ClientClass::PdaBluetooth.env().ntwk).unwrap();
        reactor.run().unwrap();
        let tail = journal.tail(4711, 32);
        assert!(!tail.is_empty(), "events land under the caller's label");
        let kinds: Vec<&str> = tail.iter().map(|e| e.kind.as_str()).collect();
        assert!(kinds.contains(&"handoff"), "{kinds:?}");
        // The handoff rolls the phase chain back through MetaExchange.
        assert!(kinds.iter().filter(|k| **k == "phase:MetaExchange").count() >= 2, "{kinds:?}");
        assert_eq!(*kinds.last().unwrap(), "phase:Done");
        // Per-session seq stream is gap-free from 0.
        let seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..tail.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn stall_report_carries_queue_depth_and_recent_events() {
        use fractal_telemetry::VirtualClock;
        let tb = testbed_with_pages(1);
        let journal = Arc::new(Journal::new(64).with_clock(VirtualClock::shared(1)));
        let mut reactor = tb.reactor_with(
            ReactorConfig::new().clock(VirtualClock::shared(100)).journal(Arc::clone(&journal)),
        );
        let id = reactor.spawn_lossy(InpSession::new(
            tb.client(ClientClass::DesktopLan),
            tb.app_id,
            0,
            0,
        ));
        let InpError::Stalled(err) = reactor.run().unwrap_err() else {
            panic!("lossy spawn must stall");
        };
        assert_eq!(err.stuck[0].id, id);
        // Opening frames were dropped before queuing: protocol-stuck, not
        // transport-starved.
        assert_eq!(err.stuck[0].queue_depth, 0);
        let kinds: Vec<&str> = err.stuck[0].recent.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, ["phase:Init", "phase:MetaExchange", "stall:mark"]);
        let rendered = err.to_string();
        assert!(rendered.contains("q=0"), "{rendered}");
        assert!(rendered.contains("stall:mark"), "{rendered}");
    }

    #[test]
    fn journal_recording_is_optional_and_absent_by_default() {
        let tb = testbed_with_pages(1);
        let mut reactor = Reactor::new(&tb.proxy, &tb.server, &tb.pad_repo);
        let id = reactor.spawn_lossy(InpSession::new(
            tb.client(ClientClass::DesktopLan),
            tb.app_id,
            0,
            0,
        ));
        let InpError::Stalled(err) = reactor.run().unwrap_err() else {
            panic!("lossy spawn must stall");
        };
        assert_eq!(err.stuck[0].id, id);
        assert!(err.stuck[0].recent.is_empty(), "no journal ⇒ no causal tail");
    }
}
