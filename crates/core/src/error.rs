//! Error types for the core framework.

use fractal_pads::PadError;
use fractal_vm::{ModuleError, VerifyError};

/// Wire-format decode errors for metadata and INP messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Message ends before a declared field.
    Truncated,
    /// An enum discriminant that is not defined.
    BadEnum(&'static str),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// Bytes left over after a complete parse.
    TrailingBytes,
    /// The INP header is malformed.
    BadHeader,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadEnum(what) => write!(f, "invalid {what} discriminant"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
            WireError::BadHeader => write!(f, "malformed INP header"),
        }
    }
}

impl std::error::Error for WireError {}

/// Top-level framework errors.
#[derive(Clone, PartialEq, Debug)]
pub enum FractalError {
    /// Wire decode failure.
    Wire(WireError),
    /// The proxy knows no such application.
    UnknownApp(crate::meta::AppId),
    /// The path search found no feasible path (all paths hit an ∞ ratio).
    NoFeasiblePath,
    /// The CDN could not supply a PAD.
    PadUnavailable(crate::meta::PadId),
    /// Downloaded PAD failed the integrity/signature/verification gauntlet.
    PadRejected(ModuleError),
    /// Downloaded PAD failed static bytecode verification.
    PadUnverifiable(VerifyError),
    /// The PAD's statically proven minimum fuel exceeds the client's
    /// sandbox budget: it could never complete, so it is rejected before
    /// instantiation instead of wasting a download and a doomed run.
    PadInfeasible {
        /// Fuel the PAD provably needs for an entry to complete.
        min_fuel: u64,
        /// The client's sandbox fuel budget.
        budget: u64,
    },
    /// A deployed PAD failed at run time.
    PadRuntime(PadError),
    /// The server does not hold the requested content.
    UnknownContent(u32),
    /// Protocol mismatch between `APP_REQ` and the server's PAD set.
    ProtocolNotDeployed(fractal_protocols::ProtocolId),
}

impl core::fmt::Display for FractalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FractalError::Wire(e) => write!(f, "wire error: {e}"),
            FractalError::UnknownApp(id) => write!(f, "unknown application {id}"),
            FractalError::NoFeasiblePath => write!(f, "no feasible adaptation path"),
            FractalError::PadUnavailable(id) => write!(f, "PAD {id} unavailable from CDN"),
            FractalError::PadRejected(e) => write!(f, "PAD rejected: {e}"),
            FractalError::PadUnverifiable(e) => write!(f, "PAD failed verification: {e}"),
            FractalError::PadInfeasible { min_fuel, budget } => {
                write!(f, "PAD needs at least {min_fuel} fuel but the budget is {budget}")
            }
            FractalError::PadRuntime(e) => write!(f, "PAD runtime failure: {e}"),
            FractalError::UnknownContent(id) => write!(f, "unknown content {id}"),
            FractalError::ProtocolNotDeployed(p) => {
                write!(f, "protocol {p} not deployed at server")
            }
        }
    }
}

impl std::error::Error for FractalError {}

impl From<WireError> for FractalError {
    fn from(e: WireError) -> Self {
        FractalError::Wire(e)
    }
}

impl From<ModuleError> for FractalError {
    fn from(e: ModuleError) -> Self {
        FractalError::PadRejected(e)
    }
}

impl From<VerifyError> for FractalError {
    fn from(e: VerifyError) -> Self {
        FractalError::PadUnverifiable(e)
    }
}

impl From<PadError> for FractalError {
    fn from(e: PadError) -> Self {
        FractalError::PadRuntime(e)
    }
}

/// The unified error surface of the event-driven INP stack.
///
/// The endpoint state machines ([`ProtocolViolation`]), the session state
/// machine ([`SessionError`]), the byte transport ([`TransportError`] /
/// [`FrameError`]), and the reactor's stall diagnostic ([`ReactorStalled`])
/// each keep their own precise type — but callers of the
/// [`Reactor`](crate::reactor::Reactor) should not have to triple-match.
/// Everything that crosses the reactor's public signatures (including
/// [`InpSession::error`](crate::reactor::InpSession::error)) converges
/// here via `From`.
///
/// [`ProtocolViolation`]: crate::endpoint::ProtocolViolation
/// [`SessionError`]: crate::reactor::SessionError
/// [`TransportError`]: crate::transport::TransportError
/// [`FrameError`]: crate::transport::FrameError
/// [`ReactorStalled`]: crate::reactor::ReactorStalled
#[derive(Clone, PartialEq, Debug)]
pub enum InpError {
    /// An endpoint state machine rejected a message (Figure 4 order).
    Protocol(crate::endpoint::ProtocolViolation),
    /// The session state machine failed.
    Session(crate::reactor::SessionError),
    /// The byte transport failed (e.g. closed mid-session).
    Transport(crate::transport::TransportError),
    /// Frame reassembly failed (garbage, oversized, malformed).
    Frame(crate::transport::FrameError),
    /// The reactor quiesced with live sessions.
    Stalled(crate::reactor::ReactorStalled),
}

impl core::fmt::Display for InpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InpError::Protocol(e) => write!(f, "protocol violation: {e}"),
            InpError::Session(e) => write!(f, "session error: {e}"),
            InpError::Transport(e) => write!(f, "transport error: {e}"),
            InpError::Frame(e) => write!(f, "framing error: {e}"),
            InpError::Stalled(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for InpError {}

impl From<crate::endpoint::ProtocolViolation> for InpError {
    fn from(e: crate::endpoint::ProtocolViolation) -> Self {
        InpError::Protocol(e)
    }
}

impl From<crate::reactor::SessionError> for InpError {
    fn from(e: crate::reactor::SessionError) -> Self {
        InpError::Session(e)
    }
}

impl From<crate::transport::TransportError> for InpError {
    fn from(e: crate::transport::TransportError) -> Self {
        InpError::Transport(e)
    }
}

impl From<crate::transport::FrameError> for InpError {
    fn from(e: crate::transport::FrameError) -> Self {
        InpError::Frame(e)
    }
}

impl From<crate::reactor::ReactorStalled> for InpError {
    fn from(e: crate::reactor::ReactorStalled) -> Self {
        InpError::Stalled(e)
    }
}

impl From<FractalError> for InpError {
    fn from(e: FractalError) -> Self {
        InpError::Session(crate::reactor::SessionError::Fractal(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inp_error_unifies_the_layer_errors() {
        let s: InpError = crate::reactor::SessionError::AlreadyStarted.into();
        assert!(matches!(s, InpError::Session(_)));
        assert!(s.to_string().contains("already started"));
        let t: InpError = crate::transport::TransportError::Closed.into();
        assert!(matches!(t, InpError::Transport(_)));
        let fr: InpError = crate::transport::FrameError::BadPrefix.into();
        assert!(fr.to_string().contains("INP header"));
        let fe: InpError = FractalError::NoFeasiblePath.into();
        assert!(matches!(
            fe,
            InpError::Session(crate::reactor::SessionError::Fractal(FractalError::NoFeasiblePath))
        ));
    }

    #[test]
    fn display_strings() {
        assert!(WireError::Truncated.to_string().contains("truncated"));
        assert!(FractalError::NoFeasiblePath.to_string().contains("feasible"));
        let e: FractalError = WireError::BadUtf8.into();
        assert!(matches!(e, FractalError::Wire(WireError::BadUtf8)));
    }
}
