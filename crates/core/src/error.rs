//! Error types for the core framework.

use fractal_pads::PadError;
use fractal_vm::{ModuleError, VerifyError};

/// Wire-format decode errors for metadata and INP messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Message ends before a declared field.
    Truncated,
    /// An enum discriminant that is not defined.
    BadEnum(&'static str),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// Bytes left over after a complete parse.
    TrailingBytes,
    /// The INP header is malformed.
    BadHeader,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadEnum(what) => write!(f, "invalid {what} discriminant"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
            WireError::BadHeader => write!(f, "malformed INP header"),
        }
    }
}

impl std::error::Error for WireError {}

/// Top-level framework errors.
#[derive(Clone, PartialEq, Debug)]
pub enum FractalError {
    /// Wire decode failure.
    Wire(WireError),
    /// The proxy knows no such application.
    UnknownApp(crate::meta::AppId),
    /// The path search found no feasible path (all paths hit an ∞ ratio).
    NoFeasiblePath,
    /// The CDN could not supply a PAD.
    PadUnavailable(crate::meta::PadId),
    /// Downloaded PAD failed the integrity/signature/verification gauntlet.
    PadRejected(ModuleError),
    /// Downloaded PAD failed static bytecode verification.
    PadUnverifiable(VerifyError),
    /// The PAD's statically proven minimum fuel exceeds the client's
    /// sandbox budget: it could never complete, so it is rejected before
    /// instantiation instead of wasting a download and a doomed run.
    PadInfeasible {
        /// Fuel the PAD provably needs for an entry to complete.
        min_fuel: u64,
        /// The client's sandbox fuel budget.
        budget: u64,
    },
    /// A deployed PAD failed at run time.
    PadRuntime(PadError),
    /// The server does not hold the requested content.
    UnknownContent(u32),
    /// Protocol mismatch between `APP_REQ` and the server's PAD set.
    ProtocolNotDeployed(fractal_protocols::ProtocolId),
}

impl core::fmt::Display for FractalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FractalError::Wire(e) => write!(f, "wire error: {e}"),
            FractalError::UnknownApp(id) => write!(f, "unknown application {id}"),
            FractalError::NoFeasiblePath => write!(f, "no feasible adaptation path"),
            FractalError::PadUnavailable(id) => write!(f, "PAD {id} unavailable from CDN"),
            FractalError::PadRejected(e) => write!(f, "PAD rejected: {e}"),
            FractalError::PadUnverifiable(e) => write!(f, "PAD failed verification: {e}"),
            FractalError::PadInfeasible { min_fuel, budget } => {
                write!(f, "PAD needs at least {min_fuel} fuel but the budget is {budget}")
            }
            FractalError::PadRuntime(e) => write!(f, "PAD runtime failure: {e}"),
            FractalError::UnknownContent(id) => write!(f, "unknown content {id}"),
            FractalError::ProtocolNotDeployed(p) => {
                write!(f, "protocol {p} not deployed at server")
            }
        }
    }
}

impl std::error::Error for FractalError {}

impl From<WireError> for FractalError {
    fn from(e: WireError) -> Self {
        FractalError::Wire(e)
    }
}

impl From<ModuleError> for FractalError {
    fn from(e: ModuleError) -> Self {
        FractalError::PadRejected(e)
    }
}

impl From<VerifyError> for FractalError {
    fn from(e: VerifyError) -> Self {
        FractalError::PadUnverifiable(e)
    }
}

impl From<PadError> for FractalError {
    fn from(e: PadError) -> Self {
        FractalError::PadRuntime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        assert!(WireError::Truncated.to_string().contains("truncated"));
        assert!(FractalError::NoFeasiblePath.to_string().contains("feasible"));
        let e: FractalError = WireError::BadUtf8.into();
        assert!(matches!(e, FractalError::Wire(WireError::BadUtf8)));
    }
}
