//! The Fractal client: protocol cache, PAD acceptance gauntlet, sandboxed
//! deployment, and mobile-code decoding.
//!
//! §3.3: "a client first checks its own protocol cache, which contains
//! some PADMeta saved for previous requests"; §3.5: "when a PAD is
//! received, the client verifies that it was signed by an entity on this
//! list" plus digest integrity and sandboxing. The acceptance gauntlet in
//! [`FractalClient::deploy_pad`] is, in order:
//!
//! 1. digest check against the `PADMeta` the proxy advertised;
//! 2. code-signature check against the client's trust store;
//! 3. static structural verification (every opcode decodes, branches land
//!    on instruction boundaries, …);
//! 4. abstract interpretation: stack discipline within the policy bound,
//!    reachable host calls within the granted capabilities, and a proven
//!    minimum fuel that fits the budget — all before any code runs;
//! 5. instantiation under the sandbox policy.

use std::collections::HashMap;

use bytes::Bytes;
use fractal_crypto::sign::TrustStore;
use fractal_pads::runtime::PadRuntime;
use fractal_protocols::ProtocolId;
use fractal_vm::verify::verify_module;
use fractal_vm::{analyze_module, SandboxPolicy, SignedModule};

use crate::error::FractalError;
use crate::meta::{AppId, ClientEnv, NtwkMeta, PadId, PadMeta};

/// One locally cached content version.
#[derive(Clone, Debug)]
pub struct CachedContent {
    /// Version number held.
    pub version: u32,
    /// The bytes ([`Bytes`]: handing the old version to the decoder is a
    /// refcount bump, not a copy of the page).
    pub bytes: Bytes,
}

/// Client-side statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ClientStats {
    /// Negotiations skipped thanks to the protocol cache.
    pub protocol_cache_hits: u64,
    /// Full negotiations performed.
    pub negotiations: u64,
    /// PADs downloaded and deployed.
    pub pads_deployed: u64,
    /// PADs rejected by the acceptance gauntlet.
    pub pads_rejected: u64,
}

/// Pre-bound telemetry handles mirroring [`ClientStats`] plus the PAD
/// acceptance costs (download bytes, gauntlet wall time). Zero-sized
/// no-ops unless the `telemetry` feature is on.
struct ClientTelemetry {
    bundle: fractal_telemetry::Telemetry,
    protocol_cache_hits: fractal_telemetry::Counter,
    negotiations: fractal_telemetry::Counter,
    pads_deployed: fractal_telemetry::Counter,
    pads_rejected: fractal_telemetry::Counter,
    download_bytes: fractal_telemetry::Counter,
    gauntlet_ns: fractal_telemetry::Histogram,
}

impl ClientTelemetry {
    fn bind(bundle: &fractal_telemetry::Telemetry) -> ClientTelemetry {
        ClientTelemetry {
            protocol_cache_hits: bundle.counter("fractal_client_protocol_cache_hits_total"),
            negotiations: bundle.counter("fractal_client_negotiations_total"),
            pads_deployed: bundle.counter("fractal_client_pads_deployed_total"),
            pads_rejected: bundle.counter("fractal_client_pads_rejected_total"),
            download_bytes: bundle.counter("fractal_client_pad_download_bytes_total"),
            gauntlet_ns: bundle.histogram("fractal_client_gauntlet_ns"),
            bundle: bundle.clone(),
        }
    }
}

/// A Fractal client host.
pub struct FractalClient {
    /// The environment this client probes and reports.
    pub env: ClientEnv,
    /// Trusted signing entities (§3.5).
    pub trust: TrustStore,
    /// Sandbox policy for deployed PADs.
    pub policy: SandboxPolicy,
    protocol_cache: HashMap<AppId, Vec<PadMeta>>,
    deployed: HashMap<PadId, PadRuntime>,
    content_cache: HashMap<u32, CachedContent>,
    stats: ClientStats,
    tele: ClientTelemetry,
}

impl core::fmt::Debug for FractalClient {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FractalClient")
            .field("env", &self.env)
            .field("deployed", &self.deployed.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl FractalClient {
    /// Creates a client in the given environment with the given trust
    /// anchors.
    pub fn new(env: ClientEnv, trust: TrustStore) -> FractalClient {
        FractalClient {
            env,
            trust,
            policy: SandboxPolicy::for_pads(),
            protocol_cache: HashMap::new(),
            deployed: HashMap::new(),
            content_cache: HashMap::new(),
            stats: ClientStats::default(),
            tele: ClientTelemetry::bind(&fractal_telemetry::Telemetry::global()),
        }
    }

    /// Rebinds the client's metrics to an explicit telemetry bundle
    /// (default: the process-global one).
    pub fn with_telemetry(mut self, bundle: &fractal_telemetry::Telemetry) -> FractalClient {
        self.tele = ClientTelemetry::bind(bundle);
        self
    }

    /// "Probing the system using system calls": returns the metadata for
    /// `Cli_META_REP`.
    pub fn probe(&self) -> ClientEnv {
        self.env
    }

    /// Protocol-cache lookup (the fast path of Figure 4).
    pub fn cached_protocols(&mut self, app_id: AppId) -> Option<Vec<PadMeta>> {
        match self.protocol_cache.get(&app_id) {
            Some(pads) => {
                self.stats.protocol_cache_hits += 1;
                self.tele.protocol_cache_hits.inc();
                Some(pads.clone())
            }
            None => None,
        }
    }

    /// Records a negotiation result ("the client updates his protocol
    /// cache").
    pub fn remember_protocols(&mut self, app_id: AppId, pads: &[PadMeta]) {
        self.stats.negotiations += 1;
        self.tele.negotiations.inc();
        self.protocol_cache.insert(app_id, pads.to_vec());
    }

    /// Drops the protocol cache (e.g. when the environment changes).
    pub fn clear_protocol_cache(&mut self) {
        self.protocol_cache.clear();
    }

    /// A mobility handoff: the device moved onto a different link. The
    /// environment the client reports changes and every cached
    /// negotiation result is invalidated — the old decisions were priced
    /// for the old network. Deployed PADs stay: code already through the
    /// acceptance gauntlet remains trustworthy on any link.
    pub fn handoff(&mut self, ntwk: NtwkMeta) {
        self.env.ntwk = ntwk;
        self.clear_protocol_cache();
    }

    /// Whether the PAD is already deployed locally.
    pub fn is_deployed(&self, pad: PadId) -> bool {
        self.deployed.contains_key(&pad)
    }

    /// Runs the full acceptance gauntlet on downloaded PAD bytes and
    /// deploys the module into the sandbox.
    pub fn deploy_pad(&mut self, meta: &PadMeta, wire_bytes: &[u8]) -> Result<(), FractalError> {
        self.tele.download_bytes.add(wire_bytes.len() as u64);
        let t0 = self.tele.bundle.now_ns();
        let result = (|| {
            let signed = SignedModule::from_wire(wire_bytes)?;
            let module = signed.open(&meta.digest, &self.trust)?; // digest + signature
            verify_module(&module)?; // structural verification
                                     // Abstract interpretation: stack/capability proof obligations,
                                     // plus the fuel-feasibility check, all before instantiation.
            let analysis = analyze_module(&module, &self.policy)?;
            if analysis.module_min_fuel > self.policy.max_fuel {
                return Err(FractalError::PadInfeasible {
                    min_fuel: analysis.module_min_fuel,
                    budget: self.policy.max_fuel,
                });
            }
            let runtime = PadRuntime::new(module, self.policy.clone())?;
            Ok::<PadRuntime, FractalError>(runtime)
        })();
        self.tele.gauntlet_ns.record(self.tele.bundle.now_ns().saturating_sub(t0));
        match result {
            Ok(runtime) => {
                self.deployed.insert(meta.id, runtime);
                self.stats.pads_deployed += 1;
                self.tele.pads_deployed.inc();
                Ok(())
            }
            Err(e) => {
                self.stats.pads_rejected += 1;
                self.tele.pads_rejected.inc();
                Err(e)
            }
        }
    }

    /// Decodes a server payload with a deployed PAD (mobile code, in the
    /// sandbox), using the locally cached old version when present.
    pub fn decode_content(
        &mut self,
        pad: PadId,
        content_id: u32,
        payload: &[u8],
    ) -> Result<Vec<u8>, FractalError> {
        let old = self.content_cache.get(&content_id).map(|c| c.bytes.clone()).unwrap_or_default();
        let runtime = self.deployed.get_mut(&pad).ok_or(FractalError::PadUnavailable(pad))?;
        Ok(runtime.decode(&old, payload)?)
    }

    /// Builds a protocol's upstream message (Bitmap digests / fixed-block
    /// signatures) via the deployed PAD. Returns `None` for protocols with
    /// no upstream leg.
    pub fn upstream_message(
        &mut self,
        pad: PadId,
        protocol: ProtocolId,
        content_id: u32,
    ) -> Result<Option<Vec<u8>>, FractalError> {
        let entry = match protocol {
            ProtocolId::Bitmap => "digests",
            ProtocolId::FixedBlock => "signatures",
            _ => return Ok(None),
        };
        let block_size: u32 = match protocol {
            ProtocolId::Bitmap => fractal_protocols::bitmap::DEFAULT_BLOCK_SIZE as u32,
            _ => fractal_protocols::fixedblock::DEFAULT_BLOCK_SIZE as u32,
        };
        let old = self.content_cache.get(&content_id).map(|c| c.bytes.clone()).unwrap_or_default();
        let runtime = self.deployed.get_mut(&pad).ok_or(FractalError::PadUnavailable(pad))?;
        Ok(Some(runtime.upstream(entry, &old, block_size)?))
    }

    /// The locally cached version of `content_id`.
    pub fn cached_content(&self, content_id: u32) -> Option<&CachedContent> {
        self.content_cache.get(&content_id)
    }

    /// Stores a decoded content version.
    pub fn store_content(&mut self, content_id: u32, version: u32, bytes: impl Into<Bytes>) {
        self.content_cache.insert(content_id, CachedContent { version, bytes: bytes.into() });
    }

    /// Counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{pad_id, pad_overhead, ClientClass};
    use fractal_crypto::sign::SignerRegistry;
    use fractal_pads::artifact::build_pad;

    fn setup(trusted: bool) -> (FractalClient, PadMeta, Vec<u8>) {
        let mut reg = SignerRegistry::new();
        let signer = reg.provision("app-operator");
        let artifact = build_pad(ProtocolId::Gzip, &signer);
        let meta = PadMeta {
            id: pad_id(ProtocolId::Gzip),
            protocol: ProtocolId::Gzip,
            size: artifact.wire_len() as u32,
            overhead: pad_overhead(ProtocolId::Gzip),
            digest: artifact.digest(),
            url: "cdn://pads/gzip".into(),
            parent: None,
            children: vec![],
        };
        let mut trust = TrustStore::new();
        if trusted {
            reg.export_trust(&mut trust);
        }
        let client = FractalClient::new(ClientClass::LaptopWlan.env(), trust);
        (client, meta, artifact.signed.to_wire())
    }

    #[test]
    fn deploy_and_decode() {
        let (mut client, meta, wire) = setup(true);
        client.deploy_pad(&meta, &wire).unwrap();
        assert!(client.is_deployed(meta.id));

        let content = b"some page content, some page content".repeat(50);
        let payload = fractal_protocols::gzip::Gzip.encode(&[], &content).to_vec();
        let decoded = client.decode_content(meta.id, 7, &payload).unwrap();
        assert_eq!(decoded, content);
        assert_eq!(client.stats().pads_deployed, 1);
    }

    #[test]
    fn untrusted_signer_rejected_at_deploy() {
        let (mut client, meta, wire) = setup(false);
        let err = client.deploy_pad(&meta, &wire).unwrap_err();
        assert!(matches!(err, FractalError::PadRejected(_)), "{err:?}");
        assert!(!client.is_deployed(meta.id));
        assert_eq!(client.stats().pads_rejected, 1);
    }

    #[test]
    fn tampered_bytes_rejected_at_deploy() {
        let (mut client, meta, mut wire) = setup(true);
        let idx = wire.len() - 5;
        wire[idx] ^= 0xFF;
        let err = client.deploy_pad(&meta, &wire).unwrap_err();
        assert!(matches!(err, FractalError::PadRejected(_)));
    }

    #[test]
    fn capability_exceeding_pad_rejected_before_instantiation() {
        use fractal_vm::{HostId, VerifyError};
        let mut reg = SignerRegistry::new();
        let signer = reg.provision("op");
        let mut trust = TrustStore::new();
        reg.export_trust(&mut trust);
        let mut client = FractalClient::new(ClientClass::PdaBluetooth.env(), trust);
        // The bitmap PAD's digests entry reaches the sha1 intrinsic; a
        // policy that does not grant it must reject the PAD statically.
        client.policy = SandboxPolicy::for_pads().with_hosts(&[HostId::Abort, HostId::Log]);
        let artifact = build_pad(ProtocolId::Bitmap, &signer);
        let meta = PadMeta {
            id: pad_id(ProtocolId::Bitmap),
            protocol: ProtocolId::Bitmap,
            size: artifact.wire_len() as u32,
            overhead: pad_overhead(ProtocolId::Bitmap),
            digest: artifact.digest(),
            url: String::new(),
            parent: None,
            children: vec![],
        };
        let err = client.deploy_pad(&meta, &artifact.signed.to_wire()).unwrap_err();
        assert!(
            matches!(err, FractalError::PadUnverifiable(VerifyError::CapabilityViolation { .. })),
            "{err:?}"
        );
        assert!(!client.is_deployed(meta.id));
        assert_eq!(client.stats().pads_rejected, 1);
    }

    #[test]
    fn fuel_infeasible_pad_rejected_before_instantiation() {
        let (mut client, meta, wire) = setup(true);
        client.policy = SandboxPolicy::for_pads().with_fuel(3);
        let err = client.deploy_pad(&meta, &wire).unwrap_err();
        assert!(matches!(err, FractalError::PadInfeasible { budget: 3, .. }), "{err:?}");
        assert_eq!(client.stats().pads_rejected, 1);
    }

    #[test]
    fn wrong_advertised_digest_rejected() {
        let (mut client, mut meta, wire) = setup(true);
        meta.digest = fractal_crypto::sha1::sha1(b"something else");
        assert!(client.deploy_pad(&meta, &wire).is_err());
    }

    #[test]
    fn decode_without_deploy_fails() {
        let (mut client, meta, _) = setup(true);
        let err = client.decode_content(meta.id, 7, &[]).unwrap_err();
        assert_eq!(err, FractalError::PadUnavailable(meta.id));
    }

    #[test]
    fn protocol_cache_round_trip() {
        let (mut client, meta, _) = setup(true);
        assert!(client.cached_protocols(AppId(1)).is_none());
        client.remember_protocols(AppId(1), std::slice::from_ref(&meta));
        let cached = client.cached_protocols(AppId(1)).unwrap();
        assert_eq!(cached[0].id, meta.id);
        assert_eq!(client.stats().protocol_cache_hits, 1);
        client.clear_protocol_cache();
        assert!(client.cached_protocols(AppId(1)).is_none());
    }

    #[test]
    fn content_cache() {
        let (mut client, _, _) = setup(true);
        assert!(client.cached_content(3).is_none());
        client.store_content(3, 2, vec![1, 2, 3]);
        let c = client.cached_content(3).unwrap();
        assert_eq!(c.version, 2);
        assert_eq!(c.bytes, vec![1, 2, 3]);
    }

    #[test]
    fn upstream_message_for_bitmap_only() {
        let mut reg = SignerRegistry::new();
        let signer = reg.provision("op");
        let mut trust = TrustStore::new();
        reg.export_trust(&mut trust);
        let mut client = FractalClient::new(ClientClass::PdaBluetooth.env(), trust);

        let bitmap = build_pad(ProtocolId::Bitmap, &signer);
        let meta = PadMeta {
            id: pad_id(ProtocolId::Bitmap),
            protocol: ProtocolId::Bitmap,
            size: bitmap.wire_len() as u32,
            overhead: pad_overhead(ProtocolId::Bitmap),
            digest: bitmap.digest(),
            url: String::new(),
            parent: None,
            children: vec![],
        };
        client.deploy_pad(&meta, &bitmap.signed.to_wire()).unwrap();
        client.store_content(7, 0, vec![9u8; 10_000]);
        let msg = client
            .upstream_message(meta.id, ProtocolId::Bitmap, 7)
            .unwrap()
            .expect("bitmap has an upstream leg");
        let expected =
            fractal_protocols::bitmap::Bitmap::default().upstream_message(&vec![9u8; 10_000]);
        assert_eq!(msg, expected);

        // Direct has no upstream leg.
        assert_eq!(client.upstream_message(meta.id, ProtocolId::Direct, 7).unwrap(), None);
    }

    use fractal_protocols::DiffCodec;
}
