//! Live introspection plane: `/metrics`, `/healthz`, `/journal`, and
//! `/stalls` over plain HTTP/1.0, served from the repo's own event loop.
//!
//! A c100k run is opaque from the outside: its telemetry registries are
//! per-shard and private, and its flight recorders live on the shard
//! threads. This module inverts that without giving up the share-nothing
//! layout. The [`ShardedReactor`](crate::shard::ShardedReactor) builds
//! its per-shard registries and [`Journal`]s *before* the shard threads
//! spawn, so the driver can [`attach`](IntrospectSource::attach) live
//! handles to an [`IntrospectSource`]; a sidecar [`IntrospectServer`]
//! thread then serves merged snapshots over loopback TCP while the run
//! is in flight.
//!
//! Two properties matter more than HTTP fidelity:
//!
//! * **Scrape monotonicity.** Counters must never appear to go
//!   backwards across scrapes, even as runs start and finish. Finished
//!   runs are [`retire`](IntrospectSource::retire)d by folding their
//!   final snapshot into a `baseline` that every later merge includes —
//!   the merged view only ever grows.
//! * **Exact reconciliation.** A scrape is not a sample: when the
//!   workload is quiescent, the `/metrics` body must equal
//!   [`IntrospectSource::merged_snapshot`] rendered in-process, byte for
//!   byte. The integration tests pin this.
//!
//! The server is deliberately minimal — HTTP/1.0, `Connection: close`,
//! GET only — and is built on [`sys::Poller`](crate::sys::Poller) +
//! [`TcpTransport`](crate::transport::TcpTransport), the same readiness
//! machinery the INP server itself uses. No new dependencies, no second
//! I/O idiom to maintain.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use fractal_telemetry::journal::{Journal, JournalSnapshot};
use fractal_telemetry::{Snapshot, Telemetry};

use crate::sys::{Interest, Poller};
use crate::transport::{TcpTransport, Transport, TransportError};

/// How long the serve loop sleeps in `poll(2)` per round. Bounds both
/// accept latency and shutdown latency.
const SERVE_SLICE: Duration = Duration::from_millis(50);

/// Requests whose headers exceed this are answered `400` and closed —
/// the plane serves `curl`, not the open internet.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Poller token reserved for the listener (connections use their index).
const LISTENER_TOKEN: usize = usize::MAX;

// ---------------------------------------------------------------------------
// Source: what the plane observes
// ---------------------------------------------------------------------------

/// The aggregation point between workload threads and the HTTP sidecar.
///
/// Workloads [`attach`](Self::attach) live `(Telemetry, Journal)`
/// bundles while a run is in flight and [`retire`](Self::retire) them
/// when it completes; stall diagnostics are pushed as they happen. Every
/// accessor merges `baseline ∪ live`, so scrapes see one continuous,
/// monotonically growing series across run boundaries.
#[derive(Default)]
pub struct IntrospectSource {
    inner: Mutex<SourceInner>,
}

#[derive(Default)]
struct SourceInner {
    /// Folded-in snapshots of every retired bundle.
    baseline: Snapshot,
    /// Folded-in journals of every retired bundle.
    baseline_journal: JournalSnapshot,
    /// Live bundles: `(id, telemetry, journal)`.
    live: Vec<(u64, Telemetry, Arc<Journal>)>,
    /// Rendered stall reports, in arrival order.
    stalls: Vec<String>,
    next_id: u64,
}

impl IntrospectSource {
    /// An empty source behind an [`Arc`], ready to share with a server.
    pub fn new() -> Arc<IntrospectSource> {
        Arc::new(IntrospectSource::default())
    }

    /// Registers a live bundle; the returned id names it to
    /// [`retire`](Self::retire).
    pub fn attach(&self, tele: Telemetry, journal: Arc<Journal>) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.live.push((id, tele, journal));
        id
    }

    /// Unregisters a bundle, folding its **final** snapshot and journal
    /// into the baseline. The merged view is unchanged at the instant of
    /// retirement and keeps growing afterwards — this is what makes
    /// scrape counters monotonic across consecutive runs.
    pub fn retire(&self, id: u64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(ix) = inner.live.iter().position(|(i, _, _)| *i == id) {
            let (_, tele, journal) = inner.live.swap_remove(ix);
            let (snap, jsnap) = (tele.snapshot(), journal.snapshot());
            inner.baseline.merge(&snap);
            inner.baseline_journal.merge(&jsnap);
        }
    }

    /// Baseline plus every live registry, merged into one snapshot.
    pub fn merged_snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        let mut merged = inner.baseline.clone();
        for (_, tele, _) in &inner.live {
            merged.merge(&tele.snapshot());
        }
        merged
    }

    /// Baseline plus every live flight recorder, canonically merged.
    pub fn merged_journal(&self) -> JournalSnapshot {
        let inner = self.inner.lock().unwrap();
        let mut merged = inner.baseline_journal.clone();
        for (_, _, journal) in &inner.live {
            merged.merge(&journal.snapshot());
        }
        merged
    }

    /// Appends a rendered stall diagnostic (served verbatim by
    /// `/stalls`).
    pub fn record_stall(&self, report: impl std::fmt::Display) {
        self.inner.lock().unwrap().stalls.push(report.to_string());
    }

    /// Every stall recorded so far, in arrival order.
    pub fn stalls(&self) -> Vec<String> {
        self.inner.lock().unwrap().stalls.clone()
    }
}

// ---------------------------------------------------------------------------
// HTTP plumbing
// ---------------------------------------------------------------------------

/// One accepted connection: read until the blank line, answer, flush,
/// close.
struct Conn {
    transport: TcpTransport,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    sent: usize,
    responding: bool,
}

impl Conn {
    fn new(transport: TcpTransport) -> Conn {
        Conn { transport, inbuf: Vec::new(), outbuf: Vec::new(), sent: 0, responding: false }
    }

    /// Drives the connection as far as readiness allows. Returns `false`
    /// when it is finished (response flushed or peer gone) and should be
    /// dropped.
    fn pump(&mut self, source: &IntrospectSource) -> bool {
        if !self.responding {
            let mut buf = [0u8; 1024];
            loop {
                match self.transport.recv(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => self.inbuf.extend_from_slice(&buf[..n]),
                    Err(TransportError::Closed) => return false,
                    Err(_) => return false,
                }
            }
            let header_end = self.inbuf.windows(4).position(|w| w == b"\r\n\r\n");
            if let Some(_end) = header_end {
                let head = String::from_utf8_lossy(&self.inbuf);
                self.outbuf = respond(head.lines().next().unwrap_or(""), source);
                self.responding = true;
            } else if self.inbuf.len() > MAX_REQUEST_BYTES {
                self.outbuf = render_response(400, "text/plain", "request too large\n");
                self.responding = true;
            } else if self.transport.is_closed() {
                return false;
            }
        }
        if self.responding {
            while self.sent < self.outbuf.len() {
                match self.transport.send(&self.outbuf[self.sent..]) {
                    Ok(0) => break,
                    Ok(n) => self.sent += n,
                    Err(_) => return false,
                }
            }
            if self.sent == self.outbuf.len() {
                self.transport.close();
                return false;
            }
        }
        true
    }
}

/// Builds the full response for a request line (`GET /path?query
/// HTTP/1.x`).
fn respond(request_line: &str, source: &IntrospectSource) -> Vec<u8> {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return render_response(405, "text/plain", "method not allowed\n");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => {
            let body = source.merged_snapshot().render_prometheus();
            render_response(200, "text/plain; version=0.0.4", &body)
        }
        "/healthz" => render_response(200, "text/plain", "ok\n"),
        "/journal" => {
            let session = query_param(query, "session").and_then(|v| v.parse::<u64>().ok());
            let n =
                query_param(query, "n").and_then(|v| v.parse::<usize>().ok()).unwrap_or(usize::MAX);
            let merged = source.merged_journal();
            let body = match session {
                Some(id) => {
                    let tail = merged.tail(id, n);
                    let mut out = String::new();
                    for ev in &tail {
                        out.push_str(&ev.to_string());
                        out.push('\n');
                    }
                    out.push_str(&format!("# session={id} events={}\n", tail.len()));
                    out
                }
                None => merged.render(),
            };
            render_response(200, "text/plain", &body)
        }
        "/stalls" => {
            let stalls = source.stalls();
            let mut body = String::new();
            for s in &stalls {
                body.push_str(s);
                body.push('\n');
            }
            body.push_str(&format!("# stalls={}\n", stalls.len()));
            render_response(200, "text/plain", &body)
        }
        _ => render_response(404, "text/plain", "not found\n"),
    }
}

fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| match pair.split_once('=') {
        Some((k, v)) if k == key => Some(v),
        _ => None,
    })
}

fn render_response(status: u16, content_type: &str, body: &str) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let mut out = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// The HTTP/1.0 sidecar: one thread, one [`Poller`], bounded
/// connections. Binds `127.0.0.1:<port>` (`0` picks an ephemeral port —
/// read it back from [`addr`](Self::addr)). Dropping the server signals
/// shutdown and joins the thread.
pub struct IntrospectServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl IntrospectServer {
    /// Binds and starts serving `source` on a background thread.
    pub fn spawn(port: u16, source: Arc<IntrospectSource>) -> std::io::Result<IntrospectServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::Builder::new()
            .name("fractal-introspect".into())
            .spawn(move || serve(listener, &source, &flag))?;
        Ok(IntrospectServer { addr, shutdown, handle: Some(handle) })
    }

    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for IntrospectServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve(listener: TcpListener, source: &IntrospectSource, shutdown: &AtomicBool) {
    use std::os::fd::AsRawFd;
    let mut poller = Poller::new();
    let mut conns: Vec<Conn> = Vec::new();
    while !shutdown.load(Ordering::Relaxed) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if let Ok(t) = TcpTransport::new(stream) {
                        conns.push(Conn::new(t));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
        conns.retain_mut(|c| c.pump(source));
        poller.clear();
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ);
        for (ix, c) in conns.iter().enumerate() {
            if let Some(fd) = c.transport.raw_fd() {
                let interest = if c.responding { Interest::READ_WRITE } else { Interest::READ };
                poller.register(fd, ix, interest);
            }
        }
        let events = match poller.wait(Some(SERVE_SLICE)) {
            Ok(events) => events,
            Err(_) => continue,
        };
        for ev in events {
            if ev.token == LISTENER_TOKEN {
                continue;
            }
            if let Some(c) = conns.get_mut(ev.token) {
                c.transport.set_ready(ev.readable, ev.writable);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scrape-side helpers (tests, bins, CI probes)
// ---------------------------------------------------------------------------

/// Blocking GET over a plain std stream: connect, send, read to EOF.
/// Returns the raw response (status line + headers + body).
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: introspect\r\n\r\n")?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

/// The body of a raw HTTP response (everything after the blank line).
pub fn response_body(response: &str) -> &str {
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => body,
        None => response,
    }
}

/// Parses a Prometheus text page into `(series name, value)` pairs,
/// skipping comments. Series names keep their label sets verbatim.
pub fn parse_prometheus(body: &str) -> Vec<(String, f64)> {
    body.lines()
        .filter(|line| !line.starts_with('#') && !line.trim().is_empty())
        .filter_map(|line| {
            let (name, value) = line.rsplit_once(' ')?;
            Some((name.to_string(), value.trim().parse::<f64>().ok()?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_telemetry::{MonotonicClock, Registry, VirtualClock};

    fn bundle() -> (Telemetry, Arc<Journal>) {
        let tele = Telemetry::new(Arc::new(Registry::new()), MonotonicClock::shared());
        let journal =
            Arc::new(Journal::new(64).with_clock(Arc::new(VirtualClock::starting_at(3, 0))));
        (tele, journal)
    }

    #[test]
    fn healthz_and_unknown_routes_over_real_tcp() {
        let source = IntrospectSource::new();
        let server = IntrospectServer::spawn(0, source).expect("bind ephemeral");
        let ok = http_get(server.addr(), "/healthz").unwrap();
        assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok}");
        assert_eq!(response_body(&ok), "ok\n");
        let missing = http_get(server.addr(), "/nope").unwrap();
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
    }

    #[test]
    fn metrics_scrape_equals_in_process_render() {
        let source = IntrospectSource::new();
        let (tele, journal) = bundle();
        tele.counter("fractal_demo_total").add(41);
        tele.gauge("fractal_demo_depth").set(7);
        source.attach(tele, journal);
        let server = IntrospectServer::spawn(0, source.clone()).expect("bind");
        let scraped = http_get(server.addr(), "/metrics").unwrap();
        assert_eq!(
            response_body(&scraped),
            source.merged_snapshot().render_prometheus(),
            "scrape must reconcile exactly with the in-process snapshot"
        );
        if fractal_telemetry::enabled() {
            let series = parse_prometheus(response_body(&scraped));
            assert!(series.iter().any(|(n, v)| n == "fractal_demo_total" && *v == 41.0));
        }
    }

    #[test]
    fn retire_folds_into_baseline_and_keeps_counters_monotonic() {
        if !fractal_telemetry::enabled() {
            return;
        }
        let source = IntrospectSource::new();
        let (tele, journal) = bundle();
        tele.counter("fractal_runs_total").inc();
        let id = source.attach(tele, journal);
        let before = source.merged_snapshot();
        assert_eq!(before.counters["fractal_runs_total"], 1);
        source.retire(id);
        let after = source.merged_snapshot();
        assert_eq!(after, before, "retirement must not change the merged view");
        // A second run on a fresh bundle keeps growing the same series.
        let (tele2, journal2) = bundle();
        tele2.counter("fractal_runs_total").inc();
        source.attach(tele2, journal2);
        assert_eq!(source.merged_snapshot().counters["fractal_runs_total"], 2);
    }

    #[test]
    fn journal_route_serves_merged_events_and_session_tails() {
        let source = IntrospectSource::new();
        let (tele, journal) = bundle();
        let k = journal.kind("phase:MetaExchange");
        journal.record(9, k);
        journal.record(9, journal.kind("phase:Done"));
        journal.record(2, k);
        source.attach(tele, journal);
        let server = IntrospectServer::spawn(0, source).expect("bind");
        let all = http_get(server.addr(), "/journal").unwrap();
        assert!(response_body(&all).contains("session=9 seq=1"), "{all}");
        let tail = http_get(server.addr(), "/journal?session=9&n=1").unwrap();
        let body = response_body(&tail);
        assert!(body.contains("kind=phase:Done"), "{body}");
        assert!(!body.contains("kind=phase:MetaExchange"), "n=1 tail: {body}");
        assert!(body.contains("# session=9 events=1"), "{body}");
    }

    #[test]
    fn stalls_route_reports_recorded_diagnostics() {
        let source = IntrospectSource::new();
        source.record_stall("1 stuck of 4 after 200ms quiet");
        let server = IntrospectServer::spawn(0, source).expect("bind");
        let resp = http_get(server.addr(), "/stalls").unwrap();
        let body = response_body(&resp);
        assert!(body.contains("1 stuck of 4"), "{body}");
        assert!(body.contains("# stalls=1"), "{body}");
    }
}
