//! The experimental platform of Figure 7 and the calibrated cost table.
//!
//! ## Client classes
//!
//! | Class | CPU | OS | Network |
//! |---|---|---|---|
//! | Desktop | Pentium IV 2.0 GHz ("D") | Fedora Core 2 | LAN (100 Mbps) |
//! | Laptop | Pentium IV 3.06 GHz ("L") | Fedora Core 2 | Wireless LAN (11 Mbps) |
//! | Pocket PC | Intel PXA 255 400 MHz ("P") | WinCE 4.2 | Bluetooth (723 kbps) |
//!
//! ## Cost table calibration
//!
//! The per-PAD overhead profiles (ms per MB of content at the 500 MHz
//! reference CPU of Equation 1) are calibrated to the *relative* overheads
//! the paper measured with its Java prototype on 2005 hardware — Figure 10
//! shows seconds-scale compute on the Pocket PC and a vary-sized-blocking
//! server cost an order of magnitude above everything else. They are not
//! native-Rust throughputs; using modern native speeds would flatten every
//! compute effect the paper's adaptation decisions hinge on. The
//! [`fractal-bench` calibration binary](../fractal_bench) can re-derive a
//! table from live measurements if you want the native regime instead.
//!
//! | PAD | server ms/MB | client ms/MB | est. traffic ratio |
//! |---|---|---|---|
//! | Direct | 0 | 5 | 1.0 |
//! | Gzip | 500 (LZ77 encode) | 300 (decode) | 0.40 |
//! | Bitmap | 120 (digest + compare) | 2600 (digest old + upload + rebuild) | 0.12 |
//! | Vary-sized | 12000 (chunk+digest both versions) | 2700 (verify + rebuild) | 0.06 |
//! | Fixed-sized | 9000 (rolling scan) | 3000 (signatures + rebuild) | 0.13 |

use fractal_net::link::{Link, LinkKind};
use fractal_protocols::ProtocolId;

use crate::meta::{
    AppId, AppMeta, ClientEnv, CpuType, DevMeta, NtwkMeta, OsType, PadId, PadMeta, PadOverhead,
};
use crate::ratio::Ratios;

/// The paper's three client configurations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ClientClass {
    /// Desktop on switched Ethernet.
    DesktopLan,
    /// Laptop on 802.11b.
    LaptopWlan,
    /// Pocket PC on Bluetooth.
    PdaBluetooth,
}

impl ClientClass {
    /// All classes in the paper's presentation order.
    pub const ALL: [ClientClass; 3] =
        [ClientClass::DesktopLan, ClientClass::LaptopWlan, ClientClass::PdaBluetooth];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ClientClass::DesktopLan => "Desktop in LAN",
            ClientClass::LaptopWlan => "Laptop in Wireless LAN",
            ClientClass::PdaBluetooth => "PDA in Bluetooth",
        }
    }

    /// The device + network metadata this class probes.
    pub fn env(self) -> ClientEnv {
        match self {
            ClientClass::DesktopLan => ClientEnv {
                dev: DevMeta {
                    os: OsType::FedoraCore2,
                    cpu: CpuType::PentiumIv2000,
                    cpu_mhz: 2000,
                    memory_mb: 512,
                },
                ntwk: NtwkMeta {
                    kind: LinkKind::Lan,
                    bandwidth_kbps: LinkKind::Lan.bandwidth_kbps() as u32,
                },
            },
            ClientClass::LaptopWlan => ClientEnv {
                dev: DevMeta {
                    os: OsType::FedoraCore2,
                    cpu: CpuType::PentiumIv3060,
                    cpu_mhz: 3060,
                    memory_mb: 512,
                },
                ntwk: NtwkMeta {
                    kind: LinkKind::Wlan,
                    bandwidth_kbps: LinkKind::Wlan.bandwidth_kbps() as u32,
                },
            },
            ClientClass::PdaBluetooth => ClientEnv {
                dev: DevMeta {
                    os: OsType::WinCe42,
                    cpu: CpuType::Pxa255,
                    cpu_mhz: 400,
                    memory_mb: 64,
                },
                ntwk: NtwkMeta {
                    kind: LinkKind::Bluetooth,
                    bandwidth_kbps: LinkKind::Bluetooth.bandwidth_kbps() as u32,
                },
            },
        }
    }

    /// The simulated last-mile link.
    pub fn link(self) -> Link {
        match self {
            ClientClass::DesktopLan => LinkKind::Lan.link(),
            ClientClass::LaptopWlan => LinkKind::Wlan.link(),
            ClientClass::PdaBluetooth => LinkKind::Bluetooth.link(),
        }
    }
}

impl core::fmt::Display for ClientClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The calibrated overhead profile for one protocol (see module docs).
pub fn pad_overhead(protocol: ProtocolId) -> PadOverhead {
    match protocol {
        ProtocolId::Direct => {
            PadOverhead { server_ms_per_mb: 0.0, client_ms_per_mb: 5.0, traffic_ratio: 1.0 }
        }
        ProtocolId::Gzip => {
            PadOverhead { server_ms_per_mb: 500.0, client_ms_per_mb: 300.0, traffic_ratio: 0.40 }
        }
        ProtocolId::Bitmap => {
            PadOverhead { server_ms_per_mb: 120.0, client_ms_per_mb: 2600.0, traffic_ratio: 0.12 }
        }
        ProtocolId::VaryBlock => PadOverhead {
            server_ms_per_mb: 12_000.0,
            client_ms_per_mb: 2700.0,
            traffic_ratio: 0.06,
        },
        ProtocolId::FixedBlock => {
            PadOverhead { server_ms_per_mb: 9000.0, client_ms_per_mb: 3000.0, traffic_ratio: 0.13 }
        }
    }
}

/// Deterministic PAD id for a case-study protocol.
pub fn pad_id(protocol: ProtocolId) -> PadId {
    PadId(protocol.wire_id() as u64)
}

/// The normalized ratio matrices of Equations 4–6: 𝓐 has 1.1 entries for
/// the compute protocols on the PXA 255 column; 𝓑 and 𝓡 are all ones.
pub fn paper_ratios() -> Ratios {
    let mut ratios = Ratios::linear();
    for p in [ProtocolId::Gzip, ProtocolId::VaryBlock, ProtocolId::Bitmap] {
        ratios.cpu.set(pad_id(p), CpuType::Pxa255, 1.1);
    }
    ratios
}

/// Builds the case-study `AppMeta` (the one-level PAT of Figure 8) from
/// built PAD artifacts: one leaf per protocol, sizes and digests from the
/// signed modules, overheads from the calibrated table.
pub fn case_study_app_meta(
    app_id: AppId,
    artifacts: &[(ProtocolId, fractal_crypto::Digest, u32)],
) -> AppMeta {
    let pads = artifacts
        .iter()
        .map(|&(protocol, digest, size)| PadMeta {
            id: pad_id(protocol),
            protocol,
            size,
            overhead: pad_overhead(protocol),
            digest,
            url: format!("cdn://pads/{}", protocol.slug()),
            parent: None,
            children: vec![],
        })
        .collect();
    AppMeta { app_id, pads }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_envs_match_figure7() {
        let d = ClientClass::DesktopLan.env();
        assert_eq!(d.dev.cpu_mhz, 2000);
        assert_eq!(d.ntwk.kind, LinkKind::Lan);
        let l = ClientClass::LaptopWlan.env();
        assert_eq!(l.dev.cpu_mhz, 3060);
        assert_eq!(l.ntwk.kind, LinkKind::Wlan);
        let p = ClientClass::PdaBluetooth.env();
        assert_eq!(p.dev.os, OsType::WinCe42);
        assert_eq!(p.dev.cpu, CpuType::Pxa255);
        assert_eq!(p.ntwk.kind, LinkKind::Bluetooth);
    }

    #[test]
    fn cost_table_shape() {
        // Vary's server cost dominates everything (Figure 10's headline).
        let vary = pad_overhead(ProtocolId::VaryBlock);
        for p in ProtocolId::ALL {
            if p != ProtocolId::VaryBlock {
                assert!(vary.server_ms_per_mb >= 10.0 * pad_overhead(p).server_ms_per_mb / 10.0);
                assert!(vary.server_ms_per_mb > pad_overhead(p).server_ms_per_mb);
            }
        }
        // Traffic ordering: direct > gzip > bitmap > vary (Figure 11(a)).
        let r = |p: ProtocolId| pad_overhead(p).traffic_ratio;
        assert!(r(ProtocolId::Direct) > r(ProtocolId::Gzip));
        assert!(r(ProtocolId::Gzip) > r(ProtocolId::Bitmap));
        assert!(r(ProtocolId::Bitmap) > r(ProtocolId::VaryBlock));
    }

    #[test]
    fn ratios_match_equation4() {
        let r = paper_ratios();
        assert_eq!(r.cpu.get(pad_id(ProtocolId::Gzip), CpuType::Pxa255), 1.1);
        assert_eq!(r.cpu.get(pad_id(ProtocolId::Direct), CpuType::Pxa255), 1.0);
        assert_eq!(r.cpu.get(pad_id(ProtocolId::Gzip), CpuType::PentiumIv2000), 1.0);
        assert!(r.os.is_empty());
        assert!(r.net.is_empty());
    }

    #[test]
    fn app_meta_builder() {
        let artifacts: Vec<(ProtocolId, fractal_crypto::Digest, u32)> = ProtocolId::PAPER_FOUR
            .iter()
            .map(|&p| {
                (p, fractal_crypto::sha1::sha1(p.slug().as_bytes()), 1000 + p.wire_id() as u32)
            })
            .collect();
        let meta = case_study_app_meta(AppId(1), &artifacts);
        assert_eq!(meta.pads.len(), 4);
        for pad in &meta.pads {
            assert!(pad.parent.is_none());
            assert!(pad.children.is_empty());
            assert!(pad.url.starts_with("cdn://pads/"));
        }
    }

    #[test]
    fn pad_ids_distinct() {
        let ids: std::collections::HashSet<_> =
            ProtocolId::ALL.iter().map(|&p| pad_id(p)).collect();
        assert_eq!(ids.len(), ProtocolId::ALL.len());
    }
}
