//! The adaptation proxy of §3.2: negotiation manager, distribution
//! manager, and the adaptation cache.
//!
//! The **negotiation manager** holds one PAT per application (built from
//! `AppMeta` pushed by the application server) and runs the Figure 6 path
//! search. The **distribution manager** post-processes the result — it
//! strips the parent/child links from the `PADMeta` sent to clients
//! ("hides the parent and child links since the exposure to the client is
//! unnecessary") — and maintains the **adaptation cache**:
//!
//! ```text
//! { DevMeta, Application ID, NtwkMeta } ⇒ { PADMeta₁ … PADMetaₙ }
//! ```

use std::collections::HashMap;

use fractal_net::time::SimDuration;

use crate::error::FractalError;
use crate::meta::{AppId, AppMeta, ClientEnv, PadMeta};
use crate::overhead::{OverheadModel, ServerComputeMode};
use crate::pat::Pat;
use crate::search::{search, AdaptationPath};

/// `Std` content size used during negotiation (Equation 1's "fixed size of
/// traffic, 1MB in our implementation").
pub const STD_CONTENT_BYTES: u64 = 1_000_000;

/// Counters for Figure 9(a) and the ablations.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProxyStats {
    /// Negotiations answered from the adaptation cache.
    pub cache_hits: u64,
    /// Negotiations that ran the path search.
    pub cache_misses: u64,
    /// `AppMeta` pushes received.
    pub app_pushes: u64,
}

/// The adaptation proxy.
pub struct AdaptationProxy {
    pats: HashMap<AppId, Pat>,
    model: OverheadModel,
    cache: HashMap<(ClientEnv, AppId), Vec<PadMeta>>,
    cache_enabled: bool,
    stats: ProxyStats,
}

impl core::fmt::Debug for AdaptationProxy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AdaptationProxy")
            .field("apps", &self.pats.len())
            .field("cache_entries", &self.cache.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl AdaptationProxy {
    /// Creates a proxy with the given overhead model.
    pub fn new(model: OverheadModel) -> AdaptationProxy {
        AdaptationProxy {
            pats: HashMap::new(),
            model,
            cache: HashMap::new(),
            cache_enabled: true,
            stats: ProxyStats::default(),
        }
    }

    /// Disables the adaptation cache (ablation).
    pub fn with_cache_disabled(mut self) -> AdaptationProxy {
        self.cache_enabled = false;
        self
    }

    /// Receives an `AppMeta` push from an application server, (re)building
    /// that application's PAT and invalidating affected cache entries.
    pub fn push_app_meta(&mut self, meta: &AppMeta) {
        let pat = Pat::from_app_meta(meta);
        self.cache.retain(|(_, app), _| *app != meta.app_id);
        self.pats.insert(meta.app_id, pat);
        self.stats.app_pushes += 1;
    }

    /// Switches the server-compute mode (reactive ↔ proactive adaptive
    /// content). Clears the cache: cached decisions embed the old mode.
    pub fn set_mode(&mut self, mode: ServerComputeMode) {
        if self.model.mode != mode {
            self.model.mode = mode;
            self.cache.clear();
        }
    }

    /// Current server-compute mode.
    pub fn mode(&self) -> ServerComputeMode {
        self.model.mode
    }

    /// The proxy's overhead model (read-only).
    pub fn model(&self) -> &OverheadModel {
        &self.model
    }

    /// Direct access to an application's PAT (diagnostics, figure harness).
    pub fn pat(&self, app_id: AppId) -> Option<&Pat> {
        self.pats.get(&app_id)
    }

    /// The heart of the negotiation: answers `Cli_META_REP` with the
    /// `PADMeta` list for `PAD_META_REP`.
    pub fn negotiate(
        &mut self,
        app_id: AppId,
        client: ClientEnv,
    ) -> Result<Vec<PadMeta>, FractalError> {
        if self.cache_enabled {
            if let Some(hit) = self.cache.get(&(client, app_id)) {
                self.stats.cache_hits += 1;
                return Ok(hit.clone());
            }
        }
        let pat = self.pats.get(&app_id).ok_or(FractalError::UnknownApp(app_id))?;
        let path = search(pat, &self.model, &client, STD_CONTENT_BYTES)?;
        self.stats.cache_misses += 1;

        // Distribution manager: client views (links hidden), cache update.
        let pads = self.materialize(app_id, &path);
        if self.cache_enabled {
            self.cache.insert((client, app_id), pads.clone());
        }
        Ok(pads)
    }

    fn materialize(&self, app_id: AppId, path: &AdaptationPath) -> Vec<PadMeta> {
        let pat = &self.pats[&app_id];
        path.pads.iter().map(|id| pat.meta(*id).expect("path ids resolve").client_view()).collect()
    }

    /// Estimated proxy service time for one negotiation — used by the
    /// Figure 9(a) capacity simulation. Cache hits are one table lookup;
    /// misses pay the path search, linear in PAT size.
    pub fn service_time(&self, app_id: AppId, cache_hit: bool) -> SimDuration {
        let nodes = self.pats.get(&app_id).map_or(0, Pat::len) as u64;
        if cache_hit {
            SimDuration::micros(40)
        } else {
            SimDuration::micros(200 + 25 * nodes)
        }
    }

    /// Whether the cache currently holds an entry for `(client, app)`.
    pub fn cached(&self, app_id: AppId, client: &ClientEnv) -> bool {
        self.cache.contains_key(&(*client, app_id))
    }

    /// Counters.
    pub fn stats(&self) -> ProxyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{case_study_app_meta, paper_ratios, ClientClass};
    use crate::ratio::Ratios;
    use fractal_crypto::sha1::sha1;
    use fractal_protocols::ProtocolId;

    fn proxy_with_case_study() -> AdaptationProxy {
        let artifacts: Vec<_> = ProtocolId::PAPER_FOUR
            .iter()
            .map(|&p| (p, sha1(p.slug().as_bytes()), 2000u32))
            .collect();
        let meta = case_study_app_meta(AppId(1), &artifacts);
        let mut proxy = AdaptationProxy::new(OverheadModel::paper(paper_ratios()));
        proxy.push_app_meta(&meta);
        proxy
    }

    #[test]
    fn unknown_app_rejected() {
        let mut proxy = AdaptationProxy::new(OverheadModel::paper(Ratios::linear()));
        let err = proxy.negotiate(AppId(9), ClientClass::DesktopLan.env());
        assert_eq!(err, Err(FractalError::UnknownApp(AppId(9))));
    }

    #[test]
    fn negotiation_returns_client_views() {
        let mut proxy = proxy_with_case_study();
        let pads = proxy.negotiate(AppId(1), ClientClass::DesktopLan.env()).unwrap();
        assert_eq!(pads.len(), 1, "one-level PAT picks a single PAD");
        assert!(pads[0].parent.is_none());
        assert!(pads[0].children.is_empty());
        assert!(!pads[0].url.is_empty());
    }

    #[test]
    fn case_study_winners_per_class() {
        // The headline adaptation decisions of Figure 11(b).
        let mut proxy = proxy_with_case_study();
        let pick = |proxy: &mut AdaptationProxy, class: ClientClass| {
            proxy.negotiate(AppId(1), class.env()).unwrap()[0].protocol
        };
        assert_eq!(pick(&mut proxy, ClientClass::DesktopLan), ProtocolId::Direct);
        assert_eq!(pick(&mut proxy, ClientClass::LaptopWlan), ProtocolId::Gzip);
        assert_eq!(pick(&mut proxy, ClientClass::PdaBluetooth), ProtocolId::Bitmap);
    }

    #[test]
    fn proactive_mode_flips_pda_to_varyblock() {
        // Figure 10(d) / 11(c): excluding server compute changes the PDA's
        // negotiated protocol from Bitmap to Vary-sized blocking.
        let mut proxy = proxy_with_case_study();
        proxy.set_mode(ServerComputeMode::Exclude);
        let pads = proxy.negotiate(AppId(1), ClientClass::PdaBluetooth.env()).unwrap();
        assert_eq!(pads[0].protocol, ProtocolId::VaryBlock);
        // Desktop and laptop keep their winners.
        let d = proxy.negotiate(AppId(1), ClientClass::DesktopLan.env()).unwrap();
        assert_eq!(d[0].protocol, ProtocolId::Direct);
        let l = proxy.negotiate(AppId(1), ClientClass::LaptopWlan.env()).unwrap();
        assert_eq!(l[0].protocol, ProtocolId::Gzip);
    }

    #[test]
    fn cache_hits_after_first_negotiation() {
        let mut proxy = proxy_with_case_study();
        let env = ClientClass::LaptopWlan.env();
        let first = proxy.negotiate(AppId(1), env).unwrap();
        assert!(proxy.cached(AppId(1), &env));
        let second = proxy.negotiate(AppId(1), env).unwrap();
        assert_eq!(first, second);
        let stats = proxy.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn cache_disabled_ablation() {
        let mut proxy = proxy_with_case_study().with_cache_disabled();
        let env = ClientClass::LaptopWlan.env();
        proxy.negotiate(AppId(1), env).unwrap();
        proxy.negotiate(AppId(1), env).unwrap();
        let stats = proxy.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 2);
    }

    #[test]
    fn mode_switch_clears_cache() {
        let mut proxy = proxy_with_case_study();
        let env = ClientClass::PdaBluetooth.env();
        proxy.negotiate(AppId(1), env).unwrap();
        assert!(proxy.cached(AppId(1), &env));
        proxy.set_mode(ServerComputeMode::Exclude);
        assert!(!proxy.cached(AppId(1), &env));
        // Same-mode set is a no-op that keeps the cache.
        proxy.negotiate(AppId(1), env).unwrap();
        proxy.set_mode(ServerComputeMode::Exclude);
        assert!(proxy.cached(AppId(1), &env));
    }

    #[test]
    fn app_push_invalidates_only_that_app() {
        let mut proxy = proxy_with_case_study();
        let artifacts: Vec<_> = ProtocolId::PAPER_FOUR
            .iter()
            .map(|&p| (p, sha1(p.slug().as_bytes()), 2000u32))
            .collect();
        let other = case_study_app_meta(AppId(2), &artifacts);
        proxy.push_app_meta(&other);

        let env = ClientClass::DesktopLan.env();
        proxy.negotiate(AppId(1), env).unwrap();
        proxy.negotiate(AppId(2), env).unwrap();
        proxy.push_app_meta(&other); // re-push app 2
        assert!(proxy.cached(AppId(1), &env));
        assert!(!proxy.cached(AppId(2), &env));
    }

    #[test]
    fn service_time_scales_with_tree() {
        let proxy = proxy_with_case_study();
        let hit = proxy.service_time(AppId(1), true);
        let miss = proxy.service_time(AppId(1), false);
        assert!(miss > hit);
    }
}
