//! The adaptation proxy of §3.2: negotiation manager, distribution
//! manager, and the adaptation cache.
//!
//! The **negotiation manager** holds one PAT per application (built from
//! `AppMeta` pushed by the application server) and runs the Figure 6 path
//! search. The **distribution manager** post-processes the result — it
//! strips the parent/child links from the `PADMeta` sent to clients
//! ("hides the parent and child links since the exposure to the client is
//! unnecessary") — and maintains the **adaptation cache**:
//!
//! ```text
//! { DevMeta, Application ID, NtwkMeta } ⇒ { PADMeta₁ … PADMetaₙ }
//! ```
//!
//! ## Concurrency model
//!
//! Every traffic-path operation takes `&self`: the proxy is a concurrent
//! service, shareable across worker threads behind an `Arc`, and that now
//! includes reconfiguration. The PAT table is epoch-versioned
//! ([`crate::epoch`]): [`negotiate`](AdaptationProxy::negotiate) pins one
//! immutable table generation wait-free, and
//! [`push_app_metas`](AdaptationProxy::push_app_metas) publishes a
//! successor table off-path — pushes run concurrently with live
//! negotiations. The adaptation cache and the path-search memo are split
//! into [`SHARDS`] lock-striped `RwLock` shards keyed by the hash of
//! `(ClientEnv, AppId)`, and counters are atomics. Misses take the
//! shard's write lock for the (microsecond-scale) path search, which
//! makes the hit/miss accounting *exact*: each distinct key misses
//! exactly once no matter how many threads race on it — the concurrency
//! suite in `tests/concurrency.rs` pins this down.
//!
//! Cache and memo entries are **generation-tagged**: each carries the
//! per-app PAT generation it was computed against, validated on every
//! hit. A push installs the new PAT (bumping the app's generation) and
//! then sweeps the shards — so a racing negotiation that pinned the old
//! table can at worst insert an entry tagged with the old generation
//! *after* the sweep, and that entry is detected as stale on its next
//! lookup instead of being served. The sweep is pure reclamation; the
//! tags carry correctness.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fractal_net::time::SimDuration;
use parking_lot::RwLock;

use crate::epoch::Epoch;
use crate::error::FractalError;
use crate::meta::{AppId, AppMeta, ClientEnv, PadMeta};
use crate::overhead::{OverheadModel, ServerComputeMode};
use crate::pat::Pat;
use crate::search::{search, AdaptationPath};

/// `Std` content size used during negotiation (Equation 1's "fixed size of
/// traffic, 1MB in our implementation").
pub const STD_CONTENT_BYTES: u64 = 1_000_000;

/// Number of lock stripes in the adaptation cache and path-search memo.
/// Power of two so the shard index is a mask of the key hash.
pub const SHARDS: usize = 16;

/// Counters for Figure 9(a) and the ablations.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProxyStats {
    /// Negotiations answered from the adaptation cache.
    pub cache_hits: u64,
    /// Negotiations that ran the path search.
    pub cache_misses: u64,
    /// `AppMeta` pushes received.
    pub app_pushes: u64,
}

/// Cache/memo key: the client environment plus the application.
type Key = (ClientEnv, AppId);

/// Pre-bound telemetry handles: one registry lookup per name at proxy
/// construction, zero lookups on the hot path. With the `telemetry`
/// feature off these are zero-sized no-ops and every call compiles away.
struct ProxyTelemetry {
    bundle: fractal_telemetry::Telemetry,
    cache_hits: fractal_telemetry::Counter,
    cache_misses: fractal_telemetry::Counter,
    app_pushes: fractal_telemetry::Counter,
    memo_hits: fractal_telemetry::Counter,
    memo_misses: fractal_telemetry::Counter,
    nodes_expanded: fractal_telemetry::Counter,
    paths_examined: fractal_telemetry::Counter,
    search_ns: fractal_telemetry::Histogram,
}

impl ProxyTelemetry {
    fn bind(bundle: &fractal_telemetry::Telemetry) -> ProxyTelemetry {
        ProxyTelemetry {
            cache_hits: bundle.counter("fractal_proxy_cache_hits_total"),
            cache_misses: bundle.counter("fractal_proxy_cache_misses_total"),
            app_pushes: bundle.counter("fractal_proxy_app_pushes_total"),
            memo_hits: bundle.counter("fractal_search_memo_hits_total"),
            memo_misses: bundle.counter("fractal_search_memo_misses_total"),
            nodes_expanded: bundle.counter("fractal_search_nodes_expanded_total"),
            paths_examined: bundle.counter("fractal_search_paths_examined_total"),
            search_ns: bundle.histogram("fractal_search_time_ns"),
            bundle: bundle.clone(),
        }
    }
}

/// One lock-striped shard pair: the distribution manager's PADMeta cache
/// and the negotiation manager's path-search memo share striping so a key
/// touches exactly one lock of each kind. Every entry is tagged with the
/// per-app PAT generation it was computed against; a hit with a stale tag
/// is a miss (see the module docs on the push/negotiate race).
#[derive(Default)]
struct Shard {
    /// Adaptation cache: key → (PAT generation, client-view PADMeta list).
    cache: RwLock<HashMap<Key, (u64, Vec<PadMeta>)>>,
    /// Path-search memo: key → (PAT generation, raw search result), so
    /// repeated DFS over the same tree is O(1) even when the adaptation
    /// cache is disabled or has been invalidated for unrelated reasons.
    memo: RwLock<HashMap<Key, (u64, AdaptationPath)>>,
}

/// One application's entry in the epoch-versioned PAT table: the tree
/// plus the generation it was installed at (bumped per re-push; the tag
/// that cache/memo entries are validated against).
#[derive(Clone)]
struct PatEntry {
    generation: u64,
    pat: Arc<Pat>,
}

/// The negotiation manager's PAT table, published as one epoch snapshot:
/// a pinned reader sees every application's tree at a consistent instant,
/// even mid-batch-push. Cloning copies the index; the trees are `Arc`'d.
#[derive(Clone, Default)]
struct PatTable {
    pats: HashMap<AppId, PatEntry>,
}

fn shard_index(client: &ClientEnv, app_id: AppId) -> usize {
    // Fixed-key hasher so the stripe assignment is deterministic across
    // runs (the per-instance RandomState of std's HashMap would not be).
    let mut h = std::hash::DefaultHasher::new();
    (client, app_id).hash(&mut h);
    (h.finish() as usize) & (SHARDS - 1)
}

/// The adaptation proxy.
pub struct AdaptationProxy {
    pats: Epoch<PatTable>,
    model: OverheadModel,
    shards: [Shard; SHARDS],
    cache_enabled: bool,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    app_pushes: AtomicU64,
    tele: ProxyTelemetry,
}

impl core::fmt::Debug for AdaptationProxy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let entries: usize = self.shards.iter().map(|s| s.cache.read().len()).sum();
        f.debug_struct("AdaptationProxy")
            .field("apps", &self.pats.pin().pats.len())
            .field("cache_entries", &entries)
            .field("stats", &self.stats())
            .finish()
    }
}

impl AdaptationProxy {
    /// Creates a proxy with the given overhead model.
    pub fn new(model: OverheadModel) -> AdaptationProxy {
        AdaptationProxy {
            pats: Epoch::new(PatTable::default()),
            model,
            shards: std::array::from_fn(|_| Shard::default()),
            cache_enabled: true,
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            app_pushes: AtomicU64::new(0),
            tele: ProxyTelemetry::bind(&fractal_telemetry::Telemetry::global()),
        }
    }

    /// Disables the adaptation cache (ablation).
    pub fn with_cache_disabled(mut self) -> AdaptationProxy {
        self.cache_enabled = false;
        self
    }

    /// Rebinds the proxy's metrics to an explicit telemetry bundle
    /// (default: the process-global one). Tests and the determinism suite
    /// use per-work-unit registries and virtual clocks here.
    pub fn with_telemetry(mut self, bundle: &fractal_telemetry::Telemetry) -> AdaptationProxy {
        self.tele = ProxyTelemetry::bind(bundle);
        self
    }

    /// Receives an `AppMeta` push from an application server, (re)building
    /// that application's PAT and invalidating affected cache and memo
    /// entries. Takes `&self` — pushes run concurrently with live
    /// negotiations (see the module docs).
    pub fn push_app_meta(&self, meta: &AppMeta) {
        self.push_app_metas(std::slice::from_ref(meta));
    }

    /// Registers an application with the negotiation manager — the
    /// server-side half of deployment. Semantically the first `AppMeta`
    /// push for that app; returns `true` if the application was new,
    /// `false` if this re-registered (and so reconfigured) a known one.
    pub fn register_app(&self, meta: &AppMeta) -> bool {
        let known = self.pats.pin().pats.contains_key(&meta.app_id);
        self.push_app_meta(meta);
        !known
    }

    /// Receives a batch of `AppMeta` pushes at once, `&self`, concurrent
    /// with negotiations. The successor PAT table is published first
    /// (bumping each affected app's generation), then the stale cache and
    /// memo entries are swept. The sweep is batched: the affected app-id
    /// set is computed once, then each shard's cache and memo are swept in
    /// **one** write-lock acquisition each — 2·[`SHARDS`] lock operations
    /// total, independent of how many applications reconfigure. A
    /// negotiation racing the sweep can at worst re-insert an entry tagged
    /// with the superseded generation, which every lookup rejects.
    pub fn push_app_metas(&self, metas: &[AppMeta]) {
        if metas.is_empty() {
            return;
        }
        self.pats.publish_with(|table| {
            for meta in metas {
                let generation = table.pats.get(&meta.app_id).map_or(0, |e| e.generation) + 1;
                let pat = Arc::new(Pat::from_app_meta(meta));
                table.pats.insert(meta.app_id, PatEntry { generation, pat });
            }
        });
        let affected: Vec<AppId> = metas.iter().map(|m| m.app_id).collect();
        for shard in &self.shards {
            shard.cache.write().retain(|(_, app), _| !affected.contains(app));
            shard.memo.write().retain(|(_, app), _| !affected.contains(app));
        }
        self.app_pushes.fetch_add(metas.len() as u64, Ordering::Relaxed);
        self.tele.app_pushes.add(metas.len() as u64);
    }

    /// Switches the server-compute mode (reactive ↔ proactive adaptive
    /// content). Clears the cache and memo: cached decisions embed the old
    /// mode.
    pub fn set_mode(&mut self, mode: ServerComputeMode) {
        if self.model.mode != mode {
            self.model.mode = mode;
            for shard in &self.shards {
                shard.cache.write().clear();
                shard.memo.write().clear();
            }
        }
    }

    /// Current server-compute mode.
    pub fn mode(&self) -> ServerComputeMode {
        self.model.mode
    }

    /// The proxy's overhead model (read-only).
    pub fn model(&self) -> &OverheadModel {
        &self.model
    }

    /// Direct access to an application's PAT (diagnostics, figure
    /// harness). A refcounted handle to the tree in the current table
    /// generation — stable even if a push lands right after.
    pub fn pat(&self, app_id: AppId) -> Option<Arc<Pat>> {
        self.pats.pin().pats.get(&app_id).map(|e| Arc::clone(&e.pat))
    }

    /// The heart of the negotiation: answers `Cli_META_REP` with the
    /// `PADMeta` list for `PAD_META_REP`. Safe to call from any number of
    /// threads sharing the proxy.
    pub fn negotiate(
        &self,
        app_id: AppId,
        client: ClientEnv,
    ) -> Result<Vec<PadMeta>, FractalError> {
        // Pin one PAT-table generation for the whole negotiation: the tree
        // we search and the generation we tag the result with can't be
        // torn apart by a concurrent push.
        let table = self.pats.pin();
        let entry = table.pats.get(&app_id).ok_or(FractalError::UnknownApp(app_id))?;
        if !self.cache_enabled {
            let pads = self.compute(entry, app_id, &client)?;
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
            self.tele.cache_misses.inc();
            return Ok(pads);
        }

        let key = (client, app_id);
        let shard = &self.shards[shard_index(&client, app_id)];
        if let Some((generation, hit)) = shard.cache.read().get(&key) {
            if *generation == entry.generation {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.tele.cache_hits.inc();
                return Ok(hit.clone());
            }
        }
        // Double-checked under the write lock: a racing thread may have
        // filled the entry between our read and write acquisition. Holding
        // the stripe's write lock across the search keeps the accounting
        // exact — one miss per distinct key, everything else a hit.
        let mut guard = shard.cache.write();
        if let Some((generation, hit)) = guard.get(&key) {
            if *generation == entry.generation {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.tele.cache_hits.inc();
                return Ok(hit.clone());
            }
        }
        let pads = self.compute(entry, app_id, &client)?;
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.tele.cache_misses.inc();

        // Distribution manager: cache update with the client views, tagged
        // with the PAT generation they were computed against.
        guard.insert(key, (entry.generation, pads.clone()));
        Ok(pads)
    }

    /// Runs (or recalls) the path search and materializes client views.
    fn compute(
        &self,
        entry: &PatEntry,
        app_id: AppId,
        client: &ClientEnv,
    ) -> Result<Vec<PadMeta>, FractalError> {
        let key = (*client, app_id);
        let shard = &self.shards[shard_index(client, app_id)];
        if let Some((generation, path)) = shard.memo.read().get(&key) {
            if *generation == entry.generation {
                self.tele.memo_hits.inc();
                return Ok(materialize(&entry.pat, path));
            }
        }
        let t0 = self.tele.bundle.now_ns();
        let path = search(&entry.pat, &self.model, client, STD_CONTENT_BYTES)?;
        self.tele.search_ns.record(self.tele.bundle.now_ns().saturating_sub(t0));
        self.tele.memo_misses.inc();
        self.tele.nodes_expanded.add(u64::from(path.nodes_marked));
        self.tele.paths_examined.add(u64::from(path.paths_examined));
        let pads = materialize(&entry.pat, &path);
        shard.memo.write().insert(key, (entry.generation, path));
        Ok(pads)
    }

    /// Estimated proxy service time for one negotiation — used by the
    /// Figure 9(a) capacity simulation. Cache hits are one table lookup;
    /// misses pay the path search, linear in PAT size.
    pub fn service_time(&self, app_id: AppId, cache_hit: bool) -> SimDuration {
        let nodes = self.pats.pin().pats.get(&app_id).map_or(0, |e| e.pat.len()) as u64;
        if cache_hit {
            SimDuration::micros(40)
        } else {
            SimDuration::micros(200 + 25 * nodes)
        }
    }

    /// Clears the adaptation cache **and** the path-search memo on a
    /// shared proxy (`&self`): the next negotiation for any key pays the
    /// full cold path search again. Benchmarks call this between timed
    /// passes so each pass starts cold and rows measure path-search
    /// scaling rather than cache hits. Counters are left untouched —
    /// recomputed entries count as fresh misses.
    pub fn clear_adaptation_state(&self) {
        for shard in &self.shards {
            shard.cache.write().clear();
            shard.memo.write().clear();
        }
    }

    /// Whether the cache currently holds a *live* entry for
    /// `(client, app)` — an entry tagged with a superseded PAT generation
    /// does not count, exactly as `negotiate` would refuse to serve it.
    pub fn cached(&self, app_id: AppId, client: &ClientEnv) -> bool {
        let table = self.pats.pin();
        let Some(entry) = table.pats.get(&app_id) else {
            return false;
        };
        self.shards[shard_index(client, app_id)]
            .cache
            .read()
            .get(&(*client, app_id))
            .is_some_and(|(generation, _)| *generation == entry.generation)
    }

    /// Counters (a consistent-enough snapshot of the atomics).
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            app_pushes: self.app_pushes.load(Ordering::Relaxed),
        }
    }
}

/// Distribution manager: client views (links hidden) for a search result.
fn materialize(pat: &Pat, path: &AdaptationPath) -> Vec<PadMeta> {
    path.pads.iter().map(|id| pat.meta(*id).expect("path ids resolve").client_view()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{case_study_app_meta, paper_ratios, ClientClass};
    use crate::ratio::Ratios;
    use fractal_crypto::sha1::sha1;
    use fractal_protocols::ProtocolId;

    fn proxy_with_case_study() -> AdaptationProxy {
        let artifacts: Vec<_> = ProtocolId::PAPER_FOUR
            .iter()
            .map(|&p| (p, sha1(p.slug().as_bytes()), 2000u32))
            .collect();
        let meta = case_study_app_meta(AppId(1), &artifacts);
        let proxy = AdaptationProxy::new(OverheadModel::paper(paper_ratios()));
        proxy.push_app_meta(&meta);
        proxy
    }

    #[test]
    fn unknown_app_rejected() {
        let proxy = AdaptationProxy::new(OverheadModel::paper(Ratios::linear()));
        let err = proxy.negotiate(AppId(9), ClientClass::DesktopLan.env());
        assert_eq!(err, Err(FractalError::UnknownApp(AppId(9))));
    }

    #[test]
    fn negotiation_returns_client_views() {
        let proxy = proxy_with_case_study();
        let pads = proxy.negotiate(AppId(1), ClientClass::DesktopLan.env()).unwrap();
        assert_eq!(pads.len(), 1, "one-level PAT picks a single PAD");
        assert!(pads[0].parent.is_none());
        assert!(pads[0].children.is_empty());
        assert!(!pads[0].url.is_empty());
    }

    #[test]
    fn case_study_winners_per_class() {
        // The headline adaptation decisions of Figure 11(b).
        let proxy = proxy_with_case_study();
        let pick = |proxy: &AdaptationProxy, class: ClientClass| {
            proxy.negotiate(AppId(1), class.env()).unwrap()[0].protocol
        };
        assert_eq!(pick(&proxy, ClientClass::DesktopLan), ProtocolId::Direct);
        assert_eq!(pick(&proxy, ClientClass::LaptopWlan), ProtocolId::Gzip);
        assert_eq!(pick(&proxy, ClientClass::PdaBluetooth), ProtocolId::Bitmap);
    }

    #[test]
    fn proactive_mode_flips_pda_to_varyblock() {
        // Figure 10(d) / 11(c): excluding server compute changes the PDA's
        // negotiated protocol from Bitmap to Vary-sized blocking.
        let mut proxy = proxy_with_case_study();
        proxy.set_mode(ServerComputeMode::Exclude);
        let pads = proxy.negotiate(AppId(1), ClientClass::PdaBluetooth.env()).unwrap();
        assert_eq!(pads[0].protocol, ProtocolId::VaryBlock);
        // Desktop and laptop keep their winners.
        let d = proxy.negotiate(AppId(1), ClientClass::DesktopLan.env()).unwrap();
        assert_eq!(d[0].protocol, ProtocolId::Direct);
        let l = proxy.negotiate(AppId(1), ClientClass::LaptopWlan.env()).unwrap();
        assert_eq!(l[0].protocol, ProtocolId::Gzip);
    }

    #[test]
    fn clear_adaptation_state_makes_next_negotiation_cold() {
        let proxy = proxy_with_case_study();
        let env = ClientClass::PdaBluetooth.env();
        let first = proxy.negotiate(AppId(1), env).unwrap();
        assert!(proxy.cached(AppId(1), &env));
        proxy.clear_adaptation_state();
        assert!(!proxy.cached(AppId(1), &env));
        // The recomputed decision is identical, and it was a real
        // recomputation: a second miss, not a hit or a memo recall.
        let second = proxy.negotiate(AppId(1), env).unwrap();
        assert_eq!(first, second);
        let stats = proxy.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 2);
    }

    #[test]
    fn cache_hits_after_first_negotiation() {
        let proxy = proxy_with_case_study();
        let env = ClientClass::LaptopWlan.env();
        let first = proxy.negotiate(AppId(1), env).unwrap();
        assert!(proxy.cached(AppId(1), &env));
        let second = proxy.negotiate(AppId(1), env).unwrap();
        assert_eq!(first, second);
        let stats = proxy.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn cache_disabled_ablation() {
        let proxy = proxy_with_case_study().with_cache_disabled();
        let env = ClientClass::LaptopWlan.env();
        proxy.negotiate(AppId(1), env).unwrap();
        proxy.negotiate(AppId(1), env).unwrap();
        let stats = proxy.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 2);
    }

    #[test]
    fn mode_switch_clears_cache() {
        let mut proxy = proxy_with_case_study();
        let env = ClientClass::PdaBluetooth.env();
        proxy.negotiate(AppId(1), env).unwrap();
        assert!(proxy.cached(AppId(1), &env));
        proxy.set_mode(ServerComputeMode::Exclude);
        assert!(!proxy.cached(AppId(1), &env));
        // Same-mode set is a no-op that keeps the cache.
        proxy.negotiate(AppId(1), env).unwrap();
        proxy.set_mode(ServerComputeMode::Exclude);
        assert!(proxy.cached(AppId(1), &env));
    }

    #[test]
    fn app_push_invalidates_only_that_app() {
        let proxy = proxy_with_case_study();
        let artifacts: Vec<_> = ProtocolId::PAPER_FOUR
            .iter()
            .map(|&p| (p, sha1(p.slug().as_bytes()), 2000u32))
            .collect();
        let other = case_study_app_meta(AppId(2), &artifacts);
        proxy.push_app_meta(&other);

        let env = ClientClass::DesktopLan.env();
        proxy.negotiate(AppId(1), env).unwrap();
        proxy.negotiate(AppId(2), env).unwrap();
        proxy.push_app_meta(&other); // re-push app 2
        assert!(proxy.cached(AppId(1), &env));
        assert!(!proxy.cached(AppId(2), &env));
    }

    #[test]
    fn batched_push_invalidates_all_affected_apps_at_once() {
        let proxy = proxy_with_case_study();
        let artifacts: Vec<_> = ProtocolId::PAPER_FOUR
            .iter()
            .map(|&p| (p, sha1(p.slug().as_bytes()), 2000u32))
            .collect();
        let app2 = case_study_app_meta(AppId(2), &artifacts);
        let app3 = case_study_app_meta(AppId(3), &artifacts);
        proxy.push_app_metas(&[app2.clone(), app3.clone()]);
        assert_eq!(proxy.stats().app_pushes, 3, "1 from setup + 2 batched");

        let env = ClientClass::DesktopLan.env();
        for id in [1, 2, 3] {
            proxy.negotiate(AppId(id), env).unwrap();
        }
        // Re-pushing apps 2 and 3 in one batch evicts both and leaves app 1.
        proxy.push_app_metas(&[app2, app3]);
        assert!(proxy.cached(AppId(1), &env));
        assert!(!proxy.cached(AppId(2), &env));
        assert!(!proxy.cached(AppId(3), &env));
        // Empty batch is a no-op.
        proxy.push_app_metas(&[]);
        assert_eq!(proxy.stats().app_pushes, 5);
    }

    #[test]
    fn service_time_scales_with_tree() {
        let proxy = proxy_with_case_study();
        let hit = proxy.service_time(AppId(1), true);
        let miss = proxy.service_time(AppId(1), false);
        assert!(miss > hit);
    }

    #[test]
    fn memo_survives_cache_ablation() {
        // With the adaptation cache disabled, the path-search memo still
        // makes repeated negotiations O(1) — and the answers stay equal.
        let proxy = proxy_with_case_study().with_cache_disabled();
        let env = ClientClass::PdaBluetooth.env();
        let a = proxy.negotiate(AppId(1), env).unwrap();
        let b = proxy.negotiate(AppId(1), env).unwrap();
        assert_eq!(a, b);
        // Both count as misses (the ablation measures "no result cache").
        assert_eq!(proxy.stats().cache_misses, 2);
    }

    #[test]
    fn register_app_reports_novelty() {
        let proxy = proxy_with_case_study();
        let artifacts: Vec<_> = ProtocolId::PAPER_FOUR
            .iter()
            .map(|&p| (p, sha1(p.slug().as_bytes()), 2000u32))
            .collect();
        let app2 = case_study_app_meta(AppId(2), &artifacts);
        assert!(proxy.register_app(&app2), "first registration is new");
        assert!(!proxy.register_app(&app2), "re-registration reconfigures");
        assert!(proxy.negotiate(AppId(2), ClientClass::DesktopLan.env()).is_ok());
    }

    #[test]
    fn stale_generation_entry_is_not_served() {
        // The push/negotiate race, replayed deterministically: a
        // negotiation that pinned the pre-push PAT table can insert its
        // result *after* the push's sweep. The entry lands tagged with the
        // superseded generation — simulate exactly that insert and check
        // that every read path treats it as a miss, not a hit.
        let proxy = proxy_with_case_study();
        let env = ClientClass::PdaBluetooth.env();
        let stale = proxy.negotiate(AppId(1), env).unwrap();

        let artifacts: Vec<_> = ProtocolId::PAPER_FOUR
            .iter()
            .map(|&p| (p, sha1(p.slug().as_bytes()), 2000u32))
            .collect();
        proxy.push_app_meta(&case_study_app_meta(AppId(1), &artifacts));

        // The racing thread's late insert: generation 1 entry, after the
        // sweep, while the live table is at generation 2.
        let shard = &proxy.shards[shard_index(&env, AppId(1))];
        shard.cache.write().insert((env, AppId(1)), (1, stale.clone()));
        assert!(!proxy.cached(AppId(1), &env), "stale tag must not count as cached");

        let fresh = proxy.negotiate(AppId(1), env).unwrap();
        assert_eq!(fresh, stale, "same meta ⇒ same decision, but recomputed");
        assert_eq!(proxy.stats().cache_misses, 2, "the stale entry was not served");
        assert!(proxy.cached(AppId(1), &env), "recompute re-tags with the live generation");
    }

    #[test]
    fn pushes_race_negotiations_without_stale_decisions() {
        use std::sync::atomic::AtomicBool;
        let proxy = Arc::new(proxy_with_case_study());
        let serial: Vec<_> = ClientClass::ALL
            .iter()
            .map(|c| proxy_with_case_study().negotiate(AppId(1), c.env()).unwrap())
            .collect();
        let artifacts: Vec<_> = ProtocolId::PAPER_FOUR
            .iter()
            .map(|&p| (p, sha1(p.slug().as_bytes()), 2000u32))
            .collect();
        let meta = case_study_app_meta(AppId(1), &artifacts);
        let done = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let proxy = Arc::clone(&proxy);
                let serial = serial.clone();
                let done = Arc::clone(&done);
                scope.spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        for (i, class) in ClientClass::ALL.iter().enumerate() {
                            // Identical meta is re-pushed throughout, so
                            // the decision must never waver — even when a
                            // negotiation spans a push.
                            let got = proxy.negotiate(AppId(1), class.env()).unwrap();
                            assert_eq!(got, serial[i], "{class}");
                        }
                    }
                });
            }
            for _ in 0..200 {
                proxy.push_app_meta(&meta);
            }
            done.store(true, Ordering::Relaxed);
        });
        assert_eq!(proxy.stats().app_pushes, 201);
    }

    #[test]
    fn concurrent_negotiations_agree_with_serial() {
        use std::sync::Arc;
        let proxy = Arc::new(proxy_with_case_study());
        let serial: Vec<_> = ClientClass::ALL
            .iter()
            .map(|c| proxy_with_case_study().negotiate(AppId(1), c.env()).unwrap())
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let proxy = Arc::clone(&proxy);
                let serial = serial.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        for (i, class) in ClientClass::ALL.iter().enumerate() {
                            let got = proxy.negotiate(AppId(1), class.env()).unwrap();
                            assert_eq!(got, serial[i], "{class}");
                        }
                    }
                });
            }
        });
        let stats = proxy.stats();
        assert_eq!(stats.cache_hits + stats.cache_misses, 4 * 50 * 3);
        assert_eq!(stats.cache_misses, 3, "one miss per distinct environment");
    }
}
