//! The adaptation path search algorithm of Figure 6.
//!
//! "The adaptation path search algorithm starts the first step by marking
//! each node in the PAT with the total overhead computed by Equation 3 …
//! Then the algorithm uses the Depth-First-Search-like algorithm to
//! traverse each path from root to leaves and finds the path with the
//! least sum of each PAD's total overhead."
//!
//! Nodes marked ∞ (disqualified by a ratio matrix) poison any path through
//! them; when every path is poisoned the search reports
//! [`FractalError::NoFeasiblePath`].

use std::collections::HashMap;

use crate::error::FractalError;
use crate::meta::{ClientEnv, PadId};
use crate::overhead::OverheadModel;
use crate::pat::Pat;

/// The search result: the chosen PAD chain and its estimated overhead,
/// plus how much work the search did (telemetry feeds on these — node
/// expansions and path examinations are the paper's Figure 6 cost knobs).
#[derive(Clone, PartialEq, Debug)]
pub struct AdaptationPath {
    /// Canonical PAD ids, root-most first.
    pub pads: Vec<PadId>,
    /// Sum of per-PAD estimated total overheads (seconds).
    pub total_overhead_s: f64,
    /// PAT nodes marked in step 1 (symbolic copies counted).
    pub nodes_marked: u32,
    /// Root→leaf paths examined in step 2.
    pub paths_examined: u32,
}

/// Marks every node with its Equation-3 total, then finds the cheapest
/// root→leaf path.
pub fn search(
    pat: &Pat,
    model: &OverheadModel,
    client: &ClientEnv,
    content_bytes: u64,
) -> Result<AdaptationPath, FractalError> {
    // Step 1 (Figure 6 lines 1–3): mark each node. Symbolic copies share
    // their canonical PAD's mark.
    let marks = mark_nodes(pat, model, client, content_bytes);
    let nodes_marked = marks.len() as u32;

    // Step 2: DFS over enumerated paths, tracking the least total.
    let mut best: Option<AdaptationPath> = None;
    let mut paths_examined = 0u32;
    for path in pat.paths() {
        paths_examined += 1;
        let total: f64 = path.iter().map(|id| marks[id]).sum();
        if !total.is_finite() {
            continue;
        }
        let better = match &best {
            None => true,
            Some(b) => total < b.total_overhead_s,
        };
        if better {
            best = Some(AdaptationPath {
                pads: path,
                total_overhead_s: total,
                nodes_marked,
                paths_examined: 0,
            });
        }
    }
    match best {
        Some(mut b) => {
            b.paths_examined = paths_examined;
            Ok(b)
        }
        None => Err(FractalError::NoFeasiblePath),
    }
}

/// The per-node overhead marks (exposed for diagnostics and the figure
/// harness; Figure 5 draws these beside each node).
pub fn mark_nodes(
    pat: &Pat,
    model: &OverheadModel,
    client: &ClientEnv,
    content_bytes: u64,
) -> HashMap<PadId, f64> {
    let mut marks = HashMap::new();
    for id in pat.ids() {
        let canonical = pat.resolve(id).expect("id from tree");
        let meta = pat.meta(canonical).expect("canonical meta");
        let total = model.pad_total(meta, client, content_bytes);
        marks.insert(canonical, total);
        marks.insert(id, total);
    }
    marks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{AppId, CpuType, DevMeta, NtwkMeta, OsType, PadMeta, PadOverhead};
    use crate::ratio::Ratios;
    use fractal_net::link::LinkKind;
    use fractal_protocols::ProtocolId;

    fn pad_with(id: u64, client_ms: f64, traffic: f64) -> PadMeta {
        PadMeta {
            id: PadId(id),
            protocol: ProtocolId::Direct,
            size: 0,
            overhead: PadOverhead {
                server_ms_per_mb: 0.0,
                client_ms_per_mb: client_ms,
                traffic_ratio: traffic,
            },
            digest: fractal_crypto::Digest::ZERO,
            url: String::new(),
            parent: None,
            children: vec![],
        }
    }

    fn client() -> ClientEnv {
        ClientEnv {
            dev: DevMeta {
                os: OsType::FedoraCore2,
                cpu: CpuType::Reference500,
                cpu_mhz: 500,
                memory_mb: 256,
            },
            ntwk: NtwkMeta { kind: LinkKind::Wan, bandwidth_kbps: 1000 },
        }
    }

    /// Rebuild the Figure 5 / Figure 6 walk-through: the first examined
    /// path (PAD1, PAD4) costs 14, but (PAD2, PAD7) costs 9 and wins.
    #[test]
    fn figure6_walkthrough() {
        let mut pat = Pat::new(AppId(1));
        // Overheads are induced via client compute at the reference CPU on
        // 1 MB content: client_ms 1000 → 1 s. Traffic 0 to keep it exact.
        let s = |x: f64| x * 1000.0;
        pat.insert(pad_with(1, s(6.0), 0.0), None).unwrap(); // PAD1 = 6
        pat.insert(pad_with(2, s(4.0), 0.0), None).unwrap(); // PAD2 = 4
        pat.insert(pad_with(3, f64::INFINITY, 0.0), None).unwrap(); // PAD3 = ∞… via ratio below
        pat.insert(pad_with(4, s(8.0), 0.0), Some(PadId(1))).unwrap(); // PAD4 = 8 → path 14
        pat.insert(pad_with(5, s(9.0), 0.0), Some(PadId(1))).unwrap(); // PAD5 = 9 → path 15
        pat.insert(pad_with(7, s(5.0), 0.0), Some(PadId(2))).unwrap(); // PAD7 = 5 → path 9
        pat.insert(pad_with(8, s(7.0), 0.0), Some(PadId(2))).unwrap(); // PAD8 = 7 → path 11
        pat.insert_symlink(PadId(6), PadId(7), Some(PadId(1))).unwrap(); // PAD1+PAD6 = 11

        let model = OverheadModel::paper(Ratios::linear());
        let got = search(&pat, &model, &client(), 1_000_000).unwrap();
        assert_eq!(got.pads, vec![PadId(2), PadId(7)]);
        assert!((got.total_overhead_s - 9.0).abs() < 1e-6, "{}", got.total_overhead_s);
        assert_eq!(got.nodes_marked, 8, "7 canonical PADs + 1 symlink");
        assert_eq!(got.paths_examined, 6, "3 under PAD1, 2 under PAD2, PAD3 alone");
    }

    #[test]
    fn infinite_marks_poison_paths() {
        let mut pat = Pat::new(AppId(1));
        pat.insert(pad_with(1, 1000.0, 0.0), None).unwrap();
        pat.insert(pad_with(2, 1000.0, 0.0), Some(PadId(1))).unwrap();
        let mut ratios = Ratios::linear();
        ratios.os.set(PadId(2), OsType::FedoraCore2, f64::INFINITY);
        let model = OverheadModel::paper(ratios);
        // The only path goes through the disqualified PAD2.
        assert_eq!(search(&pat, &model, &client(), 1_000_000), Err(FractalError::NoFeasiblePath));
    }

    #[test]
    fn picks_feasible_over_cheaper_infeasible() {
        let mut pat = Pat::new(AppId(1));
        pat.insert(pad_with(1, 100.0, 0.0), None).unwrap(); // cheap
        pat.insert(pad_with(2, 90_000.0, 0.0), None).unwrap(); // expensive
        let mut ratios = Ratios::linear();
        ratios.cpu.set(PadId(1), CpuType::Reference500, f64::INFINITY);
        let model = OverheadModel::paper(ratios);
        let got = search(&pat, &model, &client(), 1_000_000).unwrap();
        assert_eq!(got.pads, vec![PadId(2)]);
    }

    #[test]
    fn single_level_picks_min() {
        let mut pat = Pat::new(AppId(1));
        for (id, cost) in [(1u64, 500.0), (2, 200.0), (3, 900.0)] {
            pat.insert(pad_with(id, cost, 0.0), None).unwrap();
        }
        let model = OverheadModel::paper(Ratios::linear());
        let got = search(&pat, &model, &client(), 1_000_000).unwrap();
        assert_eq!(got.pads, vec![PadId(2)]);
    }

    #[test]
    fn empty_tree_has_no_path() {
        let pat = Pat::new(AppId(1));
        let model = OverheadModel::paper(Ratios::linear());
        assert_eq!(search(&pat, &model, &client(), 1), Err(FractalError::NoFeasiblePath));
    }

    #[test]
    fn marks_cover_symbolic_and_canonical() {
        let mut pat = Pat::new(AppId(1));
        pat.insert(pad_with(1, 100.0, 0.0), None).unwrap();
        pat.insert(pad_with(7, 100.0, 0.0), None).unwrap();
        pat.insert_symlink(PadId(6), PadId(7), Some(PadId(1))).unwrap();
        let model = OverheadModel::paper(Ratios::linear());
        let marks = mark_nodes(&pat, &model, &client(), 1_000_000);
        assert_eq!(marks[&PadId(6)], marks[&PadId(7)]);
    }
}
