//! The total-overhead estimator of Equations 1 and 3.
//!
//! For a client with CPU speed `c` MHz (processor type *i*, OS type *j*)
//! and network bandwidth `w` kbps (network type *k*), the estimated total
//! overhead of a PAD over a session transferring `content` bytes is
//!
//! ```text
//! total = size(pad) / (ρ·w)                                  PAD download
//!       + β_j(pad) · server_comp(pad) · (Std_cpu / server_cpu)  server compute
//!       + α_i(pad) · β_j(pad) · client_comp(pad) · (Std_cpu / c)  client compute
//!       + γ_k(pad) · traffic(pad) / (ρ·w)                    session traffic
//! ```
//!
//! where compute profiles are normalized to the 500 MHz reference CPU
//! (`Std_cpu`, Equation 1), traffic to the content size via the PAD's
//! measured traffic ratio, and ρ defaults to the paper's 0.8. Any ∞ ratio
//! makes the total ∞, disqualifying the PAD (Figure 5's ∞-marked nodes).

use crate::meta::{ClientEnv, PadMeta};
use crate::ratio::Ratios;

/// `Std_cpu`: the 500 MHz reference processor of Equation 1.
pub const STD_CPU_MHZ: f64 = 500.0;
/// `Std_bandwidth`: the 1 Mbps reference of Equation 1.
pub const STD_BANDWIDTH_KBPS: f64 = 1000.0;
/// The paper's default application-level utilization factor.
pub const DEFAULT_RHO: f64 = 0.8;

/// Whether the server-side compute term is charged.
///
/// §3.1: adaptive content is generated *reactively* (computed per request —
/// server compute counts) or *proactively* (pre-computed — it does not).
/// Figures 10(d)/11(c) re-run the negotiation without the server term and
/// watch the PDA's winner flip from Bitmap to Vary-sized blocking.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServerComputeMode {
    /// Reactive adaptive content: include server compute (Fig. 10(a–c), 11(b)).
    Include,
    /// Proactive adaptive content: exclude it (Fig. 10(d), 11(c)).
    Exclude,
}

/// A broken-down overhead estimate, in seconds.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct OverheadBreakdown {
    /// PAD download time.
    pub pad_download_s: f64,
    /// Server-side compute (zero under [`ServerComputeMode::Exclude`]).
    pub server_compute_s: f64,
    /// Client-side compute.
    pub client_compute_s: f64,
    /// Session traffic transmission time.
    pub traffic_s: f64,
}

impl OverheadBreakdown {
    /// Sum of the components.
    pub fn total(&self) -> f64 {
        self.pad_download_s + self.server_compute_s + self.client_compute_s + self.traffic_s
    }
}

/// The Equation 3 estimator, parameterized by the ratio matrices, ρ, and
/// the server's own CPU speed.
#[derive(Clone, Debug)]
pub struct OverheadModel {
    /// The normalized ratio matrices (𝓐, 𝓑, 𝓡).
    pub ratios: Ratios,
    /// Application-level utilization factor ρ.
    pub rho: f64,
    /// The application server's CPU in MHz (server compute scales by
    /// `Std_cpu / server_cpu`).
    pub server_cpu_mhz: f64,
    /// Whether server compute is charged.
    pub mode: ServerComputeMode,
}

impl OverheadModel {
    /// The paper's configuration: ρ = 0.8, a 2.8 GHz application server,
    /// server compute included.
    pub fn paper(ratios: Ratios) -> OverheadModel {
        OverheadModel {
            ratios,
            rho: DEFAULT_RHO,
            server_cpu_mhz: 2800.0,
            mode: ServerComputeMode::Include,
        }
    }

    /// Returns a copy with the server-compute mode flipped.
    pub fn with_mode(mut self, mode: ServerComputeMode) -> OverheadModel {
        self.mode = mode;
        self
    }

    /// Returns a copy with a different ρ (sensitivity ablation).
    pub fn with_rho(mut self, rho: f64) -> OverheadModel {
        assert!(rho > 0.0 && rho <= 1.0);
        self.rho = rho;
        self
    }

    /// Estimated total overhead (seconds) of `pad` for `client` over a
    /// session delivering `content_bytes`. Returns ∞ when any ratio
    /// disqualifies the PAD.
    pub fn pad_total(&self, pad: &PadMeta, client: &ClientEnv, content_bytes: u64) -> f64 {
        self.breakdown(pad, client, content_bytes).map_or(f64::INFINITY, |b| b.total())
    }

    /// Full component breakdown; `None` when the PAD is disqualified.
    pub fn breakdown(
        &self,
        pad: &PadMeta,
        client: &ClientEnv,
        content_bytes: u64,
    ) -> Option<OverheadBreakdown> {
        let alpha = self.ratios.cpu.get(pad.id, client.dev.cpu);
        let beta = self.ratios.os.get(pad.id, client.dev.os);
        let gamma = self.ratios.net.get(pad.id, client.ntwk.kind);
        if alpha.is_infinite() || beta.is_infinite() || gamma.is_infinite() {
            return None;
        }

        let goodput_bytes_per_s = self.rho * client.ntwk.bandwidth_kbps as f64 * 1000.0 / 8.0;
        let content_mb = content_bytes as f64 / 1_000_000.0;

        let pad_download_s = pad.size as f64 / goodput_bytes_per_s;
        let server_compute_s = match self.mode {
            ServerComputeMode::Include => {
                beta * pad.overhead.server_ms_per_mb
                    * content_mb
                    * (STD_CPU_MHZ / self.server_cpu_mhz)
                    / 1000.0
            }
            ServerComputeMode::Exclude => 0.0,
        };
        let client_compute_s = alpha
            * beta
            * pad.overhead.client_ms_per_mb
            * content_mb
            * (STD_CPU_MHZ / client.dev.cpu_mhz as f64)
            / 1000.0;
        let traffic_s =
            gamma * pad.overhead.traffic_ratio * content_bytes as f64 / goodput_bytes_per_s;

        Some(OverheadBreakdown { pad_download_s, server_compute_s, client_compute_s, traffic_s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{CpuType, DevMeta, NtwkMeta, OsType, PadId, PadOverhead};
    use fractal_net::link::LinkKind;
    use fractal_protocols::ProtocolId;

    fn pad(id: u64, server: f64, client: f64, ratio: f64, size: u32) -> PadMeta {
        PadMeta {
            id: PadId(id),
            protocol: ProtocolId::Gzip,
            size,
            overhead: PadOverhead {
                server_ms_per_mb: server,
                client_ms_per_mb: client,
                traffic_ratio: ratio,
            },
            digest: fractal_crypto::Digest::ZERO,
            url: String::new(),
            parent: None,
            children: vec![],
        }
    }

    fn client(cpu_mhz: u32, kind: LinkKind, bw: u32) -> ClientEnv {
        ClientEnv {
            dev: DevMeta {
                os: OsType::FedoraCore2,
                cpu: CpuType::PentiumIv2000,
                cpu_mhz,
                memory_mb: 512,
            },
            ntwk: NtwkMeta { kind, bandwidth_kbps: bw },
        }
    }

    #[test]
    fn traffic_term_matches_hand_math() {
        // Pure traffic PAD: ratio 1.0, 1 MB content, 1 Mbps at ρ=0.8 → 10 s.
        let model = OverheadModel::paper(Ratios::linear());
        let p = pad(1, 0.0, 0.0, 1.0, 0);
        let c = client(2000, LinkKind::Wan, 1000);
        let b = model.breakdown(&p, &c, 1_000_000).unwrap();
        assert!((b.traffic_s - 10.0).abs() < 1e-9, "{}", b.traffic_s);
        assert_eq!(b.server_compute_s, 0.0);
        assert_eq!(b.client_compute_s, 0.0);
    }

    #[test]
    fn client_compute_scales_inversely_with_cpu() {
        let model = OverheadModel::paper(Ratios::linear());
        let p = pad(1, 0.0, 1000.0, 0.0, 0);
        let fast = client(2000, LinkKind::Lan, 100_000);
        let slow = client(500, LinkKind::Lan, 100_000);
        let bf = model.breakdown(&p, &fast, 1_000_000).unwrap();
        let bs = model.breakdown(&p, &slow, 1_000_000).unwrap();
        // 1000 ms/MB at reference 500MHz: slow(500MHz) = 1.0 s, fast(2GHz) = 0.25 s.
        assert!((bs.client_compute_s - 1.0).abs() < 1e-9);
        assert!((bf.client_compute_s - 0.25).abs() < 1e-9);
    }

    #[test]
    fn server_compute_mode_toggles_term() {
        let model = OverheadModel::paper(Ratios::linear());
        let p = pad(1, 2800.0, 0.0, 0.0, 0);
        let c = client(2000, LinkKind::Lan, 100_000);
        let with = model.breakdown(&p, &c, 1_000_000).unwrap();
        // 2800 ms/MB at 500MHz ref on a 2.8GHz server → ×(500/2800) → 0.5 s.
        assert!((with.server_compute_s - 0.5).abs() < 1e-9);
        let without = model
            .clone()
            .with_mode(ServerComputeMode::Exclude)
            .breakdown(&p, &c, 1_000_000)
            .unwrap();
        assert_eq!(without.server_compute_s, 0.0);
        assert!(without.total() < with.total());
    }

    #[test]
    fn pad_download_term() {
        let model = OverheadModel::paper(Ratios::linear());
        let p = pad(1, 0.0, 0.0, 0.0, 100_000); // 100 KB PAD
        let c = client(2000, LinkKind::Wan, 1000); // 0.8 Mbps goodput = 100 KB/s
        let b = model.breakdown(&p, &c, 0).unwrap();
        assert!((b.pad_download_s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infinite_ratio_disqualifies() {
        let mut ratios = Ratios::linear();
        ratios.os.set(PadId(1), OsType::FedoraCore2, f64::INFINITY);
        let model = OverheadModel::paper(ratios);
        let p = pad(1, 1.0, 1.0, 1.0, 10);
        let c = client(2000, LinkKind::Lan, 100_000);
        assert!(model.breakdown(&p, &c, 1000).is_none());
        assert!(model.pad_total(&p, &c, 1000).is_infinite());
    }

    #[test]
    fn finite_ratios_multiply() {
        let mut ratios = Ratios::linear();
        ratios.cpu.set(PadId(1), CpuType::PentiumIv2000, 2.0);
        let model = OverheadModel::paper(ratios);
        let p = pad(1, 0.0, 1000.0, 0.0, 0);
        let c = client(500, LinkKind::Lan, 100_000);
        let b = model.breakdown(&p, &c, 1_000_000).unwrap();
        assert!((b.client_compute_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rho_scales_transmission_terms() {
        let base = OverheadModel::paper(Ratios::linear());
        let loose = base.clone().with_rho(0.4);
        let p = pad(1, 0.0, 0.0, 1.0, 1000);
        let c = client(2000, LinkKind::Wan, 1000);
        let b1 = base.breakdown(&p, &c, 100_000).unwrap();
        let b2 = loose.breakdown(&p, &c, 100_000).unwrap();
        assert!((b2.traffic_s / b1.traffic_s - 2.0).abs() < 1e-9);
        assert!((b2.pad_download_s / b1.pad_download_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let model = OverheadModel::paper(Ratios::linear());
        let p = pad(1, 100.0, 100.0, 0.5, 5000);
        let c = client(2000, LinkKind::Wlan, 11_000);
        let b = model.breakdown(&p, &c, 135_000).unwrap();
        let sum = b.pad_download_s + b.server_compute_s + b.client_compute_s + b.traffic_s;
        assert!((b.total() - sum).abs() < 1e-12);
        assert!(b.total() > 0.0);
    }
}
