//! Sharded reactors behind one TCP acceptor: the C100k front-end.
//!
//! One [`Reactor`] is single-threaded by design (its transport pairs and
//! framers are not shared), so scaling past one core means *more
//! reactors*, not a bigger one. [`ShardedReactor`] runs N of them behind a
//! single loopback listener:
//!
//! * the **driver** (caller's thread) connects one nonblocking TCP stream
//!   per session and registers it with the acceptor;
//! * the **acceptor** thread matches each accepted stream to its
//!   registered client end (by the connection's peer address — exact, not
//!   heuristic: a loopback 4-tuple is unique) and deals complete
//!   [`TcpTransport`] pairs round-robin across the shards;
//! * each **shard** thread owns one `Reactor`, one
//!   [`sys::Poller`](crate::sys::Poller), and its slice of the sessions.
//!   It admits everything the acceptor deals it, then alternates "drain
//!   the ready queue" with "sleep in `poll(2)` until the kernel marks a
//!   registered socket ready" — sessions wake on readiness edges, never by
//!   scanning.
//!
//! Acceptor-distributes was chosen over work-stealing deliberately: a
//! session's sockets, framers, and send queues stay on one thread for
//! their whole life, so shards share **nothing** mutable — they only read
//! the `&self` proxy/server/PAD-repo trio, which is exactly the
//! concurrency contract those services already honor (lock-striped and
//! read-only respectively). Stealing would require every slot behind a
//! lock for a rebalancing win that a round-robin deal of thousands of
//! statistically identical sessions doesn't need.
//!
//! Each shard records into its **own** telemetry registry and its own
//! flight-recorder [`Journal`]; the outcome merges them with
//! [`Snapshot::merge`] / [`JournalSnapshot::merge`] and can
//! [`reconcile`](ShardedOutcome::reconcile) the merged counters against
//! the aggregate [`ReactorReport`] — the cross-check that per-shard
//! accounting neither dropped nor double-counted a session. Sessions are
//! journal-labeled by their **spawn order** (gid), not their shard slot,
//! so under a pinned [`VirtualClock`]
//! ([`ReactorConfig::virtual_time`]) the merged
//! journal is byte-identical at any shard count.
//!
//! Stalls cannot rely on the simulated-clock protocol ([`Reactor::run`]'s
//! device): a kernel socket has no `next_ready_at`. Instead a shard that
//! sees no readiness for [`stall_timeout`](ReactorConfig::stall_timeout)
//! while sessions are live returns the same typed
//! [`ReactorStalled`](crate::reactor::ReactorStalled) diagnostic, so the
//! CI smoke gate's `timeout` wrapper stays a deadlock detector of last
//! resort, not the primary one.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use fractal_telemetry::journal::{Journal, JournalSnapshot, DEFAULT_JOURNAL_CAPACITY};
use fractal_telemetry::{MonotonicClock, Registry, SharedClock, Snapshot, Telemetry, VirtualClock};

use crate::error::InpError;
use crate::introspect::IntrospectSource;
use crate::proxy::AdaptationProxy;
use crate::reactor::{InpSession, Reactor, ReactorConfig, ReactorReport};
use crate::server::ApplicationServer;
use crate::session::PadRepo;
use crate::sys::{Interest, Poller};
use crate::transport::{TcpTransport, TransportError, TransportPair};

/// How long a shard sleeps per `poll(2)` call while waiting for readiness.
/// Small enough that admission-close and stall detection stay responsive,
/// large enough that an idle shard costs ~20 syscalls/s.
const WAIT_SLICE: Duration = Duration::from_millis(50);

/// Default consecutive-quiet time before a shard declares its live
/// sessions protocol-stuck.
const DEFAULT_STALL_TIMEOUT: Duration = Duration::from_secs(5);

fn io_err(e: std::io::Error) -> InpError {
    InpError::Transport(TransportError::Io(e.kind()))
}

/// One connection dealt to a shard: the session plus both socket ends.
struct ShardItem {
    gid: usize,
    session: InpSession,
    client: TcpTransport,
    service: TcpTransport,
}

/// A session awaiting its accepted peer: `(client local addr, gid,
/// session, client stream)`.
type Registration = (SocketAddr, usize, InpSession, TcpStream);

/// What one shard produced.
#[derive(Debug)]
pub struct ShardOutcome {
    /// Shard index (deal order).
    pub shard: usize,
    /// The shard reactor's progress summary.
    pub report: ReactorReport,
    /// The shard's private telemetry registry, snapshotted at completion.
    pub snapshot: Snapshot,
    /// The shard's flight-recorder journal, snapshotted at completion.
    pub journal: JournalSnapshot,
    sessions: Vec<(usize, InpSession)>,
}

/// The combined result of a sharded run.
#[derive(Debug)]
pub struct ShardedOutcome {
    /// Per-shard outcomes, indexed by shard.
    pub shards: Vec<ShardOutcome>,
}

impl ShardedOutcome {
    /// Sums the shard reports. `peak_in_flight` adds too: every shard held
    /// its full deal live at once (admission completes before driving), so
    /// the sum is the true process-wide concurrent-session peak.
    pub fn aggregate_report(&self) -> ReactorReport {
        let mut agg = ReactorReport { completed: 0, failed: 0, polls: 0, peak_in_flight: 0 };
        for s in &self.shards {
            agg.completed += s.report.completed;
            agg.failed += s.report.failed;
            agg.polls += s.report.polls;
            agg.peak_in_flight += s.report.peak_in_flight;
        }
        agg
    }

    /// Folds every shard's registry into one snapshot
    /// ([`Snapshot::merge`] is associative and commutative, so shard
    /// order does not matter).
    pub fn merged_snapshot(&self) -> Snapshot {
        let mut merged = Snapshot::default();
        for s in &self.shards {
            merged.merge(&s.snapshot);
        }
        merged
    }

    /// Folds every shard's flight-recorder journal into one canonical
    /// snapshot ([`JournalSnapshot::merge`] is associative and
    /// commutative, and sessions are journal-labeled by spawn order, so
    /// the result is independent of both shard order and shard count).
    pub fn merged_journal(&self) -> JournalSnapshot {
        let mut merged = JournalSnapshot::default();
        for s in &self.shards {
            merged.merge(&s.journal);
        }
        merged
    }

    /// The merged totals **plus** each shard's series under a
    /// `{shard="i"}` label — one snapshot carrying both views, shaped for
    /// embedding in `BENCH_*.json`.
    pub fn labeled_snapshot(&self) -> Snapshot {
        let mut out = self.merged_snapshot();
        for s in &self.shards {
            out.merge(&s.snapshot.labeled("shard", &s.shard.to_string()));
        }
        out
    }

    /// Cross-checks per-shard telemetry against per-shard reports, and the
    /// merged snapshot against the aggregate report: `completed`/`failed`/
    /// `polls` counters and the `peak_in_flight` gauge must match exactly,
    /// shard by shard and in total. No-op `Ok` when the `telemetry`
    /// feature is compiled out (the registries are then empty by design).
    pub fn reconcile(&self) -> Result<(), String> {
        if !fractal_telemetry::enabled() {
            return Ok(());
        }
        let check = |snap: &Snapshot, report: &ReactorReport, who: &str| -> Result<(), String> {
            let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
            let pairs = [
                ("fractal_reactor_completed_total", report.completed as u64),
                ("fractal_reactor_failed_total", report.failed as u64),
                ("fractal_reactor_polls_total", report.polls),
            ];
            for (name, want) in pairs {
                let got = counter(name);
                if got != want {
                    return Err(format!("{who}: {name} = {got}, report says {want}"));
                }
            }
            let peak = snap.gauges.get("fractal_reactor_peak_in_flight").copied().unwrap_or(0);
            if peak != report.peak_in_flight as i64 {
                return Err(format!(
                    "{who}: peak_in_flight gauge = {peak}, report says {}",
                    report.peak_in_flight
                ));
            }
            Ok(())
        };
        for s in &self.shards {
            check(&s.snapshot, &s.report, &format!("shard {}", s.shard))?;
        }
        check(&self.merged_snapshot(), &self.aggregate_report(), "merged")
    }

    /// Every session, restored to the caller's original spawn order (the
    /// round-robin deal is an implementation detail).
    pub fn into_sessions(self) -> Vec<InpSession> {
        let mut all: Vec<(usize, InpSession)> =
            self.shards.into_iter().flat_map(|s| s.sessions).collect();
        all.sort_by_key(|(gid, _)| *gid);
        all.into_iter().map(|(_, s)| s).collect()
    }
}

/// N reactors behind one loopback TCP acceptor, sharing the `&self`
/// proxy/server/PAD-repo trio. See the module docs for the thread layout.
pub struct ShardedReactor<'a> {
    proxy: &'a AdaptationProxy,
    server: &'a ApplicationServer,
    pad_repo: &'a PadRepo,
    shards: usize,
    frame_checksums: bool,
    stall_timeout: Duration,
    virtual_tick: Option<u64>,
    journal_capacity: usize,
    introspect: Option<Arc<IntrospectSource>>,
}

impl<'a> ShardedReactor<'a> {
    /// A sharded front-end over `shards` reactors (must be ≥ 1), every
    /// knob at its [`ReactorConfig`] default.
    pub fn new(
        proxy: &'a AdaptationProxy,
        server: &'a ApplicationServer,
        pad_repo: &'a PadRepo,
        shards: usize,
    ) -> ShardedReactor<'a> {
        ShardedReactor::with_config(proxy, server, pad_repo, shards, ReactorConfig::new())
    }

    /// A sharded front-end configured by one [`ReactorConfig`]. The
    /// sharded driver reads `frame_checksums`, `stall_timeout`,
    /// `virtual_time`, `journal_capacity`, and `introspect`; per-shard
    /// clocks, registries, and journals are built internally, so the
    /// single-reactor knobs (`transport`, `clock`, `telemetry`,
    /// `journal`, `tracer`) are ignored — see the knob table on
    /// [`ReactorConfig`].
    pub fn with_config(
        proxy: &'a AdaptationProxy,
        server: &'a ApplicationServer,
        pad_repo: &'a PadRepo,
        shards: usize,
        config: ReactorConfig,
    ) -> ShardedReactor<'a> {
        assert!(shards > 0, "at least one shard");
        ShardedReactor {
            proxy,
            server,
            pad_repo,
            shards,
            frame_checksums: config.frame_checksums,
            stall_timeout: config.stall_timeout.unwrap_or(DEFAULT_STALL_TIMEOUT),
            virtual_tick: config.virtual_tick,
            journal_capacity: config.journal_capacity.unwrap_or(DEFAULT_JOURNAL_CAPACITY),
            introspect: config.introspect,
        }
    }

    /// One shard's observability bundle: a private registry + a private
    /// flight-recorder ring, both on the same clock. Built on the caller's
    /// thread (before the shard spawns) so live handles can be attached to
    /// an introspection plane while the run is in flight.
    fn shard_bundle(&self) -> (Telemetry, Arc<Journal>) {
        let clock: SharedClock = match self.virtual_tick {
            Some(tick) => Arc::new(VirtualClock::starting_at(0, tick)),
            None => MonotonicClock::shared(),
        };
        let tele = Telemetry::new(Arc::new(Registry::new()), clock.clone());
        let journal = Arc::new(Journal::new(self.journal_capacity).with_clock(clock));
        (tele, journal)
    }

    /// Runs every session to a terminal phase over live loopback TCP.
    ///
    /// Connects one socket per session, deals the accepted pairs
    /// round-robin across the shards, drives all shards concurrently, and
    /// returns the per-shard outcomes. A shard whose sessions go quiet
    /// returns the typed stall; the first shard error wins (it is the root
    /// cause — acceptor/driver failures that follow from it are
    /// secondary).
    pub fn run(&self, sessions: Vec<InpSession>) -> Result<ShardedOutcome, InpError> {
        let total = sessions.len();
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(io_err)?;
        listener.set_nonblocking(true).map_err(io_err)?;
        let addr = listener.local_addr().map_err(io_err)?;

        let (reg_tx, reg_rx) = mpsc::channel::<Registration>();
        let mut shard_txs = Vec::with_capacity(self.shards);
        let mut shard_rxs = Vec::with_capacity(self.shards);
        for _ in 0..self.shards {
            let (tx, rx) = mpsc::channel::<ShardItem>();
            shard_txs.push(tx);
            shard_rxs.push(rx);
        }
        let abort = AtomicBool::new(false);
        // Observability bundles are built up front, on this thread: live
        // registry/journal handles exist before any shard spawns, which is
        // what lets an introspection plane watch a run mid-flight.
        let bundles: Vec<(Telemetry, Arc<Journal>)> =
            (0..self.shards).map(|_| self.shard_bundle()).collect();
        let attached: Vec<u64> = match &self.introspect {
            Some(src) => bundles.iter().map(|(t, j)| src.attach(t.clone(), j.clone())).collect(),
            None => Vec::new(),
        };

        std::thread::scope(|scope| {
            let acceptor = scope.spawn(|| {
                accept_and_deal(&listener, total, reg_rx, shard_txs, &abort, self.stall_timeout)
            });
            let shard_handles: Vec<_> = shard_rxs
                .into_iter()
                .zip(bundles)
                .enumerate()
                .map(|(ix, (rx, (tele, journal)))| {
                    scope.spawn(move || self.drive_shard(ix, rx, tele, journal))
                })
                .collect();

            // Driver: one nonblocking connect + registration per session.
            let connect_res: Result<(), InpError> = (|| {
                for (gid, session) in sessions.into_iter().enumerate() {
                    // Journal-label by spawn order unless the caller chose
                    // a label, so event streams are shard-assignment
                    // independent.
                    let session = if session.label().is_none() {
                        session.with_label(gid as u64)
                    } else {
                        session
                    };
                    let stream = TcpStream::connect(addr).map_err(io_err)?;
                    let local = stream.local_addr().map_err(io_err)?;
                    reg_tx
                        .send((local, gid, session, stream))
                        .map_err(|_| io_err(std::io::ErrorKind::BrokenPipe.into()))?;
                }
                Ok(())
            })();
            drop(reg_tx);
            if connect_res.is_err() {
                abort.store(true, Ordering::Relaxed);
            }

            let acceptor_res = acceptor.join().expect("acceptor panicked");
            let mut outcomes = Vec::with_capacity(self.shards);
            let mut shard_err: Option<InpError> = None;
            for h in shard_handles {
                match h.join().expect("shard panicked") {
                    Ok(out) => outcomes.push(out),
                    Err(e) => {
                        if let (Some(src), InpError::Stalled(stall)) = (&self.introspect, &e) {
                            src.record_stall(stall);
                        }
                        if shard_err.is_none() {
                            shard_err = Some(e);
                        }
                    }
                }
            }
            // Fold final registries/journals into the plane's baseline —
            // on success *and* on failure, so scrapes stay monotonic and
            // post-mortem journals survive the shard threads.
            if let Some(src) = &self.introspect {
                for id in &attached {
                    src.retire(*id);
                }
            }
            if let Some(e) = shard_err {
                return Err(e);
            }
            connect_res?;
            acceptor_res?;
            outcomes.sort_by_key(|o| o.shard);
            Ok(ShardedOutcome { shards: outcomes })
        })
    }

    /// One shard: admit everything the acceptor deals, then alternate
    /// ready-queue drains with kernel readiness waits until every session
    /// is terminal.
    fn drive_shard(
        &self,
        shard: usize,
        rx: mpsc::Receiver<ShardItem>,
        tele: Telemetry,
        journal: Arc<Journal>,
    ) -> Result<ShardOutcome, InpError> {
        let mut cfg = ReactorConfig::new().telemetry(&tele).journal(journal.clone());
        if self.frame_checksums {
            cfg = cfg.frame_checksums();
        }
        let mut reactor = Reactor::with_config(self.proxy, self.server, self.pad_repo, cfg);
        let mut gids = Vec::new();
        // Admission: block until the acceptor has dealt the whole run
        // (senders dropped). Every session is then live before the first
        // byte is pumped, so the shard's peak-in-flight equals its deal.
        for item in rx.iter() {
            gids.push(item.gid);
            reactor.spawn_on(
                item.session,
                TransportPair { client: Box::new(item.client), service: Box::new(item.service) },
            );
        }
        let mut poller = Poller::new();
        let mut quiet = Duration::ZERO;
        loop {
            while reactor.poll().is_some() {}
            if reactor.in_flight() == 0 {
                break;
            }
            poller.clear();
            reactor.register_interest(&mut poller);
            let slice = WAIT_SLICE.min(self.stall_timeout);
            let events = poller.wait(Some(slice)).map_err(io_err)?;
            if events.is_empty() {
                quiet += slice;
                if quiet >= self.stall_timeout {
                    return Err(InpError::Stalled(reactor.stall_report()));
                }
            } else {
                quiet = Duration::ZERO;
                for ev in events {
                    reactor.apply_event(ev);
                }
            }
        }
        let report = reactor.report();
        let sessions = gids.into_iter().zip(reactor.into_sessions()).collect();
        Ok(ShardOutcome {
            shard,
            report,
            snapshot: tele.snapshot(),
            journal: journal.snapshot(),
            sessions,
        })
    }
}

/// The acceptor: accept `total` connections, match each to its registered
/// client end by peer address, and deal the completed pairs round-robin.
/// Runs the listener nonblocking under the same [`Poller`] so a driver
/// failure (`abort`) or a dried-up run cannot leave it parked in
/// `accept(2)` forever.
fn accept_and_deal(
    listener: &TcpListener,
    total: usize,
    reg_rx: mpsc::Receiver<Registration>,
    shard_txs: Vec<mpsc::Sender<ShardItem>>,
    abort: &AtomicBool,
    patience: Duration,
) -> Result<(), InpError> {
    use std::os::fd::AsRawFd;
    let mut pending: HashMap<SocketAddr, (usize, InpSession, TcpStream)> = HashMap::new();
    let mut poller = Poller::new();
    let mut quiet = Duration::ZERO;
    let mut accepted = 0;
    while accepted < total {
        if abort.load(Ordering::Relaxed) {
            return Err(io_err(std::io::ErrorKind::ConnectionAborted.into()));
        }
        let (stream, peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                poller.clear();
                poller.register(listener.as_raw_fd(), 0, Interest::READ);
                let slice = WAIT_SLICE.min(patience);
                if poller.wait(Some(slice)).map_err(io_err)?.is_empty() {
                    quiet += slice;
                    if quiet >= patience {
                        return Err(io_err(std::io::ErrorKind::TimedOut.into()));
                    }
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_err(e)),
        };
        quiet = Duration::ZERO;
        // The registration for this peer may still be in the channel
        // behind others; drain until it surfaces. Every accepted
        // connection comes from a driver connect, and the driver always
        // registers right after connecting, so the recv terminates.
        let (gid, session, client) = loop {
            if let Some(found) = pending.remove(&peer) {
                break found;
            }
            match reg_rx.recv() {
                Ok((local, gid, session, stream)) => {
                    pending.insert(local, (gid, session, stream));
                }
                Err(_) => return Err(io_err(std::io::ErrorKind::NotFound.into())),
            }
        };
        let item = ShardItem {
            gid,
            session,
            client: TcpTransport::new(client).map_err(io_err)?,
            service: TcpTransport::new(stream).map_err(io_err)?,
        };
        if shard_txs[accepted % shard_txs.len()].send(item).is_err() {
            // The shard died (it reports its own root cause); stop dealing.
            return Err(io_err(std::io::ErrorKind::BrokenPipe.into()));
        }
        accepted += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::ClientClass;
    use crate::reactor::SessionPhase;
    use crate::server::AdaptiveContentMode;
    use crate::testbed::Testbed;

    fn content(seed: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i / 5) as u8).wrapping_mul(seed).wrapping_add(seed)).collect()
    }

    fn testbed_with_pages(n: u32) -> Testbed {
        let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
        for id in 0..n {
            tb.server.publish(id, content(id as u8 + 1, 6_000));
        }
        tb
    }

    #[test]
    fn sharded_run_completes_and_matches_serial_decisions() {
        const N: u32 = 24;
        const SHARDS: usize = 3;
        let tb = testbed_with_pages(N);
        let oracle_tb = testbed_with_pages(N);
        let classes: Vec<ClientClass> = (0..N).map(|i| ClientClass::ALL[i as usize % 3]).collect();

        let sessions: Vec<InpSession> = classes
            .iter()
            .enumerate()
            .map(|(i, &c)| InpSession::new(tb.client(c), tb.app_id, i as u32, 0))
            .collect();
        let sharded = ShardedReactor::new(&tb.proxy, &tb.server, &tb.pad_repo, SHARDS);
        let outcome = sharded.run(sessions).expect("sharded run completes");

        let agg = outcome.aggregate_report();
        assert_eq!(agg.completed, N as usize);
        assert_eq!(agg.failed, 0);
        assert_eq!(agg.peak_in_flight, N as usize, "hold-until-dealt admission");
        assert_eq!(outcome.shards.len(), SHARDS);
        assert!(outcome.shards.iter().all(|s| s.report.completed == N as usize / SHARDS));

        outcome.reconcile().expect("telemetry reconciles with reports");

        // Decision identity vs direct serial negotiation, in spawn order.
        let finished = outcome.into_sessions();
        assert_eq!(finished.len(), N as usize);
        for (i, (s, &class)) in finished.iter().zip(classes.iter()).enumerate() {
            assert_eq!(s.phase(), SessionPhase::Done, "session {i}");
            let expect = oracle_tb.proxy.negotiate(oracle_tb.app_id, class.env()).unwrap();
            assert_eq!(s.negotiated().unwrap(), expect.as_slice(), "session {i} ({class})");
            assert_eq!(
                s.client().cached_content(i as u32).unwrap().bytes,
                tb.server.content(i as u32, 0).unwrap(),
                "session {i} content"
            );
        }
    }

    #[test]
    fn merged_and_labeled_snapshots_cover_every_shard() {
        if !fractal_telemetry::enabled() {
            return;
        }
        let tb = testbed_with_pages(8);
        let sessions: Vec<InpSession> = (0..8)
            .map(|i| InpSession::new(tb.client(ClientClass::DesktopLan), tb.app_id, i, 0))
            .collect();
        let outcome =
            ShardedReactor::new(&tb.proxy, &tb.server, &tb.pad_repo, 2).run(sessions).unwrap();
        let labeled = outcome.labeled_snapshot();
        assert_eq!(labeled.counters["fractal_reactor_completed_total"], 8);
        assert_eq!(labeled.counters["fractal_reactor_completed_total{shard=\"0\"}"], 4);
        assert_eq!(labeled.counters["fractal_reactor_completed_total{shard=\"1\"}"], 4);
    }

    #[test]
    fn merged_journal_is_byte_identical_across_shard_counts() {
        const N: u32 = 8;
        let mut renders: Vec<String> = Vec::new();
        for shards in [1usize, 2, 4, 8] {
            let tb = testbed_with_pages(N);
            let sessions: Vec<InpSession> = (0..N)
                .map(|i| {
                    InpSession::new(tb.client(ClientClass::ALL[i as usize % 3]), tb.app_id, i, 0)
                })
                .collect();
            let outcome = ShardedReactor::with_config(
                &tb.proxy,
                &tb.server,
                &tb.pad_repo,
                shards,
                ReactorConfig::new().virtual_time(0),
            )
            .run(sessions)
            .expect("sharded run completes");
            let merged = outcome.merged_journal();
            assert_eq!(merged.sessions().len(), N as usize, "{shards} shards");
            assert_eq!(merged.dropped, 0, "{shards} shards: ring must not wrap");
            renders.push(merged.render());
        }
        for (i, other) in renders.iter().enumerate().skip(1) {
            assert_eq!(&renders[0], other, "shard count {} vs 1", [1, 2, 4, 8][i]);
        }
        // The render is substantive, not trivially equal-because-empty:
        // every session contributed its full phase chain.
        assert!(renders[0].contains("kind=phase:Done"));
        assert!(renders[0].contains("session=7"));
    }

    #[test]
    fn stall_diagnostics_carry_journal_tails_over_real_sockets() {
        let tb = testbed_with_pages(1);
        let mut session = InpSession::new(tb.client(ClientClass::DesktopLan), tb.app_id, 0, 0);
        session.start().unwrap();
        let sharded = ShardedReactor::with_config(
            &tb.proxy,
            &tb.server,
            &tb.pad_repo,
            1,
            ReactorConfig::new().stall_timeout(Duration::from_millis(200)),
        );
        let err = sharded.run(vec![session]).unwrap_err();
        let InpError::Stalled(stall) = err else {
            panic!("expected typed stall, got {err:?}");
        };
        let stuck = &stall.stuck[0];
        assert_eq!(stuck.queue_depth, 0, "nothing queued: protocol-stuck, not starved");
        let kinds: Vec<&str> = stuck.recent.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, ["phase:Init", "phase:MetaExchange", "stall:mark"]);
    }

    #[test]
    fn quiet_shard_reports_typed_stall_not_hang() {
        let tb = testbed_with_pages(1);
        // Pre-starting the session makes spawn_on's start() return
        // AlreadyStarted, so the opening frames are lost in transit —
        // the socket never carries a byte and the shard must detect it.
        let mut session = InpSession::new(tb.client(ClientClass::DesktopLan), tb.app_id, 0, 0);
        session.start().unwrap();
        let sharded = ShardedReactor::with_config(
            &tb.proxy,
            &tb.server,
            &tb.pad_repo,
            1,
            ReactorConfig::new().stall_timeout(Duration::from_millis(200)),
        );
        let err = sharded.run(vec![session]).unwrap_err();
        let InpError::Stalled(stall) = err else {
            panic!("expected typed stall, got {err:?}");
        };
        assert_eq!(stall.stuck.len(), 1);
        assert_eq!(stall.stuck[0].phase, "MetaExchange");
    }
}
