//! Seeded fault injection over any [`Transport`] pair.
//!
//! Pervasive links lose, duplicate, reorder, and corrupt bytes; they
//! partition and they die. [`FaultPlan`] wraps both ends of a
//! [`TransportPair`] with a deterministic adversary that applies those
//! faults at send-chunk granularity from a seeded xorshift stream:
//!
//! * **drop** — the chunk vanishes (the sender still thinks it went out);
//! * **duplicate** — the chunk is delivered twice back to back;
//! * **corrupt** — one byte is flipped; checked framing
//!   ([`Framer::with_checksum`](crate::transport::Framer::with_checksum))
//!   must reject the frame — corruption is never silently decoded;
//! * **reorder** — the chunk is held and released after the next one;
//! * **transient partition** — after a configured chunk count the
//!   direction parks everything until the heal instant, then flushes;
//!   the reactor's `next_ready_at`/`advance_to` protocol rides through
//!   it as recovery, not a stall;
//! * **hard link drop** — the pair closes mid-session; both ends see
//!   [`TransportError::Closed`] after draining.
//!
//! Every action is appended to a [`FaultLog`], so "same seed ⇒ same
//! faults" is checkable as byte-identical event sequences. The wrapper
//! holds no clock of its own beyond a high-water mark fed by
//! `advance_to`, so it composes over both the untimed loopback and the
//! link-priced simulated transports.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use fractal_telemetry::journal::{KindId, SessionJournal};

use crate::transport::{Transport, TransportError, TransportPair};

/// Bytes one direction may park while partitioned before `writable()`
/// reports backpressure.
const PARK_CAP: usize = 256 * 1024;

/// Which direction of the pair an event happened on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultDir {
    /// Client → service.
    ToService,
    /// Service → client.
    ToClient,
}

/// What the fault layer did to one sent chunk.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Passed through untouched.
    Delivered,
    /// Vanished; the sender saw a successful send.
    Dropped,
    /// Delivered twice back to back.
    Duplicated,
    /// One byte flipped at the given offset within the chunk.
    Corrupted {
        /// Offset of the flipped byte.
        offset: usize,
    },
    /// Held back and released after the chunk that followed it.
    Reordered,
    /// The direction entered a transient partition.
    PartitionStart,
    /// The partition healed and the parked backlog flushed.
    PartitionHeal,
    /// The link died for good; the pair is closed.
    LinkDropped,
}

/// Flight-recorder labels for the injected (non-`Delivered`) fault
/// kinds, in [`fault_journal_ix`] order.
const FAULT_KIND_LABELS: [&str; 7] = [
    "fault:drop",
    "fault:dup",
    "fault:corrupt",
    "fault:reorder",
    "fault:partition",
    "fault:heal",
    "fault:link_drop",
];

/// Index of `kind` into [`FAULT_KIND_LABELS`]; `None` for `Delivered`
/// (journaling every clean chunk would flood the ring with non-events).
fn fault_journal_ix(kind: FaultKind) -> Option<usize> {
    match kind {
        FaultKind::Delivered => None,
        FaultKind::Dropped => Some(0),
        FaultKind::Duplicated => Some(1),
        FaultKind::Corrupted { .. } => Some(2),
        FaultKind::Reordered => Some(3),
        FaultKind::PartitionStart => Some(4),
        FaultKind::PartitionHeal => Some(5),
        FaultKind::LinkDropped => Some(6),
    }
}

/// One entry of the deterministic fault log.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultEvent {
    /// Direction the chunk was travelling.
    pub dir: FaultDir,
    /// 1-based chunk counter within that direction.
    pub chunk: u64,
    /// What happened to it.
    pub kind: FaultKind,
}

/// A transient partition: the direction parks all traffic once it has
/// carried `after_chunks` chunks, and flushes `heal_after_us` later.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Partition {
    /// Chunks carried before the partition starts.
    pub after_chunks: u64,
    /// Partition duration in simulated microseconds.
    pub heal_after_us: u64,
}

/// The seeded fault schedule for one transport pair.
///
/// Rates are per-mille per sent chunk and mutually exclusive (one roll
/// per chunk decides its fate), so `drop + dup + corrupt + reorder`
/// must stay ≤ 1000.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FaultPlan {
    /// Seed for the fault stream.
    pub seed: u64,
    /// Chunk-loss rate (‰).
    pub drop_per_mille: u16,
    /// Duplication rate (‰).
    pub dup_per_mille: u16,
    /// Single-byte corruption rate (‰).
    pub corrupt_per_mille: u16,
    /// Reorder (hold-one-chunk) rate (‰).
    pub reorder_per_mille: u16,
    /// Optional transient partition, applied per direction.
    pub partition: Option<Partition>,
    /// Optional hard link drop after this many chunks in one direction.
    pub drop_link_after_chunks: Option<u64>,
}

/// splitmix64: turns correlated seeds into well-mixed, nonzero states.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed.wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if z == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        z
    }
}

/// xorshift64*: the per-direction fault stream.
fn next_rand(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    s.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_per_mille: 0,
            dup_per_mille: 0,
            corrupt_per_mille: 0,
            reorder_per_mille: 0,
            partition: None,
            drop_link_after_chunks: None,
        }
    }

    /// Sets the chunk-loss rate (‰).
    pub fn with_drop(mut self, per_mille: u16) -> FaultPlan {
        self.drop_per_mille = per_mille;
        self
    }

    /// Sets the duplication rate (‰).
    pub fn with_dup(mut self, per_mille: u16) -> FaultPlan {
        self.dup_per_mille = per_mille;
        self
    }

    /// Sets the corruption rate (‰).
    pub fn with_corrupt(mut self, per_mille: u16) -> FaultPlan {
        self.corrupt_per_mille = per_mille;
        self
    }

    /// Sets the reorder rate (‰).
    pub fn with_reorder(mut self, per_mille: u16) -> FaultPlan {
        self.reorder_per_mille = per_mille;
        self
    }

    /// Adds a transient partition after `after_chunks` chunks, healing
    /// `heal_after_us` later.
    pub fn with_partition(mut self, after_chunks: u64, heal_after_us: u64) -> FaultPlan {
        self.partition = Some(Partition { after_chunks, heal_after_us });
        self
    }

    /// Kills the link for good after `chunks` chunks in one direction.
    pub fn with_link_drop_after(mut self, chunks: u64) -> FaultPlan {
        self.drop_link_after_chunks = Some(chunks);
        self
    }

    /// The same fault rates under a seed derived for session `i` — each
    /// session gets an independent but reproducible fault stream.
    pub fn for_session(&self, i: u64) -> FaultPlan {
        FaultPlan { seed: mix(self.seed, i.wrapping_add(1)), ..*self }
    }

    /// Wraps both ends of `pair` with this plan; the returned [`FaultLog`]
    /// observes every injected fault.
    pub fn wrap_pair(&self, pair: TransportPair) -> (TransportPair, FaultLog) {
        self.wrap_pair_inner(pair, None)
    }

    /// [`wrap_pair`](Self::wrap_pair) that also records every injected
    /// fault on `journal` (the session's flight-recorder handle), so a
    /// stall's causal tail interleaves the faults with the phase chain.
    pub fn wrap_pair_journaled(
        &self,
        pair: TransportPair,
        journal: SessionJournal,
    ) -> (TransportPair, FaultLog) {
        let kinds = std::array::from_fn(|i| journal.kind(FAULT_KIND_LABELS[i]));
        self.wrap_pair_inner(pair, Some((journal, kinds)))
    }

    fn wrap_pair_inner(
        &self,
        pair: TransportPair,
        journal: Option<(SessionJournal, [KindId; 7])>,
    ) -> (TransportPair, FaultLog) {
        let total = self.drop_per_mille as u32
            + self.dup_per_mille as u32
            + self.corrupt_per_mille as u32
            + self.reorder_per_mille as u32;
        assert!(total <= 1000, "fault rates sum to {total}‰ (> 1000)");
        let state = Rc::new(RefCell::new(FaultState {
            plan: *self,
            now: 0,
            link_dropped: false,
            dirs: [DirState::new(mix(self.seed, 0xA)), DirState::new(mix(self.seed, 0xB))],
            log: Vec::new(),
            journal,
        }));
        let wrapped = TransportPair {
            client: Box::new(FaultTransport {
                state: Rc::clone(&state),
                inner: pair.client,
                dir: 0,
            }),
            service: Box::new(FaultTransport {
                state: Rc::clone(&state),
                inner: pair.service,
                dir: 1,
            }),
        };
        (wrapped, FaultLog { state })
    }
}

#[derive(Debug)]
struct DirState {
    rng: u64,
    chunks_sent: u64,
    /// Chunks parked by an active partition, oldest first.
    parked: VecDeque<Vec<u8>>,
    parked_bytes: usize,
    /// A chunk held back by a reorder fault.
    held: Option<Vec<u8>>,
    /// Heal instant of the active partition.
    partition_until: Option<u64>,
    /// A partition fires at most once per direction.
    partition_done: bool,
}

impl DirState {
    fn new(rng: u64) -> DirState {
        DirState {
            rng,
            chunks_sent: 0,
            parked: VecDeque::new(),
            parked_bytes: 0,
            held: None,
            partition_until: None,
            partition_done: false,
        }
    }
}

#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    /// High-water mark of `advance_to` across both ends.
    now: u64,
    link_dropped: bool,
    /// Index 0 = client→service, 1 = service→client.
    dirs: [DirState; 2],
    log: Vec<FaultEvent>,
    /// Flight-recorder handle + pre-bound fault kinds, when the caller
    /// wants injections on the session's causal stream.
    journal: Option<(SessionJournal, [KindId; 7])>,
}

impl FaultState {
    /// Appends to the deterministic tape and, for actual faults, to the
    /// session's flight recorder.
    fn log_event(&mut self, ev: FaultEvent) {
        if let (Some((journal, kinds)), Some(ix)) = (&self.journal, fault_journal_ix(ev.kind)) {
            journal.record(kinds[ix]);
        }
        self.log.push(ev);
    }
}

/// Read-side handle onto the fault log of one wrapped pair.
#[derive(Debug)]
pub struct FaultLog {
    state: Rc<RefCell<FaultState>>,
}

impl FaultLog {
    /// Every fault event so far, in injection order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.state.borrow().log.clone()
    }

    /// An FNV-1a fingerprint of the event sequence — two runs injected
    /// identical faults iff their fingerprints match.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |v: u64| h = (h ^ v).wrapping_mul(0x100_0000_01b3);
        for e in self.state.borrow().log.iter() {
            eat(e.dir as u64);
            eat(e.chunk);
            let (tag, arg) = match e.kind {
                FaultKind::Delivered => (0u64, 0u64),
                FaultKind::Dropped => (1, 0),
                FaultKind::Duplicated => (2, 0),
                FaultKind::Corrupted { offset } => (3, offset as u64),
                FaultKind::Reordered => (4, 0),
                FaultKind::PartitionStart => (5, 0),
                FaultKind::PartitionHeal => (6, 0),
                FaultKind::LinkDropped => (7, 0),
            };
            eat(tag);
            eat(arg);
        }
        h
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Decision {
    Deliver,
    Drop,
    Dup,
    Corrupt,
    Reorder,
}

/// One end of a fault-wrapped pair.
pub struct FaultTransport {
    state: Rc<RefCell<FaultState>>,
    inner: Box<dyn Transport>,
    /// The direction this end *sends* on: 0 = to-service, 1 = to-client.
    dir: usize,
}

impl FaultTransport {
    fn dir_tag(&self) -> FaultDir {
        if self.dir == 0 {
            FaultDir::ToService
        } else {
            FaultDir::ToClient
        }
    }

    /// Pushes `chunk` into the inner transport; a remainder the inner
    /// window rejects is returned to the caller to re-park or re-hold.
    fn push_inner(&mut self, chunk: Vec<u8>) -> Result<Option<Vec<u8>>, TransportError> {
        let taken = self.inner.send(&chunk)?;
        if taken == chunk.len() {
            Ok(None)
        } else {
            Ok(Some(chunk[taken..].to_vec()))
        }
    }

    /// Flushes a healed partition's backlog and any reorder-held chunk
    /// whose release is due (time passed without another send).
    fn flush_due(&mut self, now: u64) -> Result<(), TransportError> {
        let healed = {
            let st = self.state.borrow();
            let d = &st.dirs[self.dir];
            d.partition_until.is_some_and(|t| now >= t)
        };
        if healed {
            loop {
                let Some(chunk) = self.state.borrow_mut().dirs[self.dir].parked.pop_front() else {
                    break;
                };
                let len = chunk.len();
                let leftover = self.push_inner(chunk)?;
                let mut st = self.state.borrow_mut();
                let d = &mut st.dirs[self.dir];
                match leftover {
                    None => d.parked_bytes -= len,
                    Some(rest) => {
                        d.parked_bytes -= len - rest.len();
                        d.parked.push_front(rest);
                        return Ok(());
                    }
                }
            }
            let mut st = self.state.borrow_mut();
            let dir_tag = self.dir_tag();
            let d = &mut st.dirs[self.dir];
            if d.parked.is_empty() && d.partition_until.is_some() {
                d.partition_until = None;
                d.partition_done = true;
                let chunk = d.chunks_sent;
                st.log_event(FaultEvent { dir: dir_tag, chunk, kind: FaultKind::PartitionHeal });
            }
        }
        // A held chunk released by time (no follow-up send arrived).
        let held = self.state.borrow_mut().dirs[self.dir].held.take();
        if let Some(chunk) = held {
            if let Some(rest) = self.push_inner(chunk)? {
                self.state.borrow_mut().dirs[self.dir].held = Some(rest);
            }
        }
        Ok(())
    }
}

impl Transport for FaultTransport {
    fn writable(&self) -> usize {
        let st = self.state.borrow();
        if st.link_dropped {
            return 0;
        }
        let d = &st.dirs[self.dir];
        if d.partition_until.is_some() {
            PARK_CAP.saturating_sub(d.parked_bytes)
        } else {
            self.inner.writable()
        }
    }

    fn readable(&self) -> usize {
        self.inner.readable()
    }

    fn send(&mut self, bytes: &[u8]) -> Result<usize, TransportError> {
        if self.state.borrow().link_dropped {
            return Err(TransportError::Closed);
        }
        if bytes.is_empty() {
            return self.inner.send(bytes);
        }
        let now = self.now_us();
        // A heal that came due since the last call flushes first, so the
        // new chunk queues behind the parked backlog, not ahead of it.
        let due_heal = {
            let st = self.state.borrow();
            st.dirs[self.dir].partition_until.is_some_and(|t| now >= t)
        };
        if due_heal {
            self.flush_due(now)?;
        }
        let plan = self.state.borrow().plan;
        let partitioned = self.state.borrow().dirs[self.dir].partition_until.is_some();
        let budget = if partitioned {
            PARK_CAP.saturating_sub(self.state.borrow().dirs[self.dir].parked_bytes)
        } else {
            self.inner.writable()
        };
        let n = bytes.len().min(budget);
        if n == 0 {
            return Ok(0);
        }

        let dir_tag = self.dir_tag();
        let mut st = self.state.borrow_mut();
        let d = &mut st.dirs[self.dir];
        d.chunks_sent += 1;
        let chunk_no = d.chunks_sent;

        if plan.drop_link_after_chunks.is_some_and(|k| chunk_no > k) {
            st.link_dropped = true;
            st.log_event(FaultEvent {
                dir: dir_tag,
                chunk: chunk_no,
                kind: FaultKind::LinkDropped,
            });
            drop(st);
            self.inner.close();
            return Err(TransportError::Closed);
        }

        if let Some(p) = plan.partition {
            let d = &mut st.dirs[self.dir];
            if !d.partition_done && d.partition_until.is_none() && chunk_no > p.after_chunks {
                d.partition_until = Some(now + p.heal_after_us.max(1));
                st.log_event(FaultEvent {
                    dir: dir_tag,
                    chunk: chunk_no,
                    kind: FaultKind::PartitionStart,
                });
            }
        }

        let d = &mut st.dirs[self.dir];
        let partitioned = d.partition_until.is_some();
        let roll = (next_rand(&mut d.rng) % 1000) as u16;
        let mut edge = plan.drop_per_mille;
        let mut decision = if roll < edge { Decision::Drop } else { Decision::Deliver };
        if decision == Decision::Deliver {
            edge += plan.dup_per_mille;
            if roll < edge {
                decision = Decision::Dup;
            }
        }
        if decision == Decision::Deliver {
            edge += plan.corrupt_per_mille;
            if roll < edge {
                decision = Decision::Corrupt;
            }
        }
        if decision == Decision::Deliver {
            edge += plan.reorder_per_mille;
            if roll < edge {
                decision = Decision::Reorder;
            }
        }

        let mut chunk = bytes[..n].to_vec();
        if decision == Decision::Corrupt {
            let offset = (next_rand(&mut d.rng) as usize) % chunk.len();
            chunk[offset] ^= 0xA5;
            st.log_event(FaultEvent {
                dir: dir_tag,
                chunk: chunk_no,
                kind: FaultKind::Corrupted { offset },
            });
        }
        if decision == Decision::Drop {
            st.log_event(FaultEvent { dir: dir_tag, chunk: chunk_no, kind: FaultKind::Dropped });
            return Ok(n);
        }

        // A chunk already held for reordering releases after this one.
        let prev_held = st.dirs[self.dir].held.take();
        let hold_current = decision == Decision::Reorder && prev_held.is_none() && !partitioned;
        let dup = decision == Decision::Dup;
        if decision != Decision::Corrupt {
            let kind = if dup {
                FaultKind::Duplicated
            } else if hold_current {
                FaultKind::Reordered
            } else {
                FaultKind::Delivered
            };
            st.log_event(FaultEvent { dir: dir_tag, chunk: chunk_no, kind });
        }
        if partitioned {
            let d = &mut st.dirs[self.dir];
            d.parked_bytes += chunk.len();
            if dup {
                d.parked_bytes += chunk.len();
                d.parked.push_back(chunk.clone());
            }
            d.parked.push_back(chunk);
            if let Some(h) = prev_held {
                d.parked_bytes += h.len();
                d.parked.push_back(h);
            }
            return Ok(n);
        }
        drop(st);

        if hold_current {
            self.state.borrow_mut().dirs[self.dir].held = Some(chunk);
            return Ok(n);
        }
        let copy = dup.then(|| chunk.clone());
        // The budget was measured against the inner window, so the first
        // copy always fits; dup copies and released holds may be partial.
        let leftover = self.push_inner(chunk)?;
        debug_assert!(leftover.is_none(), "budget-clamped chunk must fit");
        if let Some(extra) = copy {
            let _ = self.push_inner(extra)?;
        }
        if let Some(h) = prev_held {
            if let Some(rest) = self.push_inner(h)? {
                self.state.borrow_mut().dirs[self.dir].held = Some(rest);
            }
        }
        Ok(n)
    }

    fn recv(&mut self, buf: &mut [u8]) -> Result<usize, TransportError> {
        self.inner.recv(buf)
    }

    fn close(&mut self) {
        self.inner.close();
    }

    fn is_closed(&self) -> bool {
        self.state.borrow().link_dropped || self.inner.is_closed()
    }

    fn now_us(&self) -> u64 {
        self.state.borrow().now.max(self.inner.now_us())
    }

    fn next_ready_at(&self) -> Option<u64> {
        let now = self.now_us();
        let st = self.state.borrow();
        let mut at = self.inner.next_ready_at();
        let mut propose = |t: u64| {
            at = Some(at.map_or(t, |cur: u64| cur.min(t)));
        };
        // Readability of THIS end is gated on the opposite direction's
        // parked/held chunks — they surface once the peer's send side
        // heals or releases.
        let inbound = &st.dirs[1 - self.dir];
        if !inbound.parked.is_empty() {
            propose(inbound.partition_until.unwrap_or(now + 1).max(now + 1));
        }
        if inbound.held.is_some() {
            propose(now + 1);
        }
        // And OUR parked backlog keeps the pair live too: the stall
        // round advances both ends, which flushes it toward the peer.
        let outbound = &st.dirs[self.dir];
        if !outbound.parked.is_empty() {
            propose(outbound.partition_until.unwrap_or(now + 1).max(now + 1));
        }
        if outbound.held.is_some() {
            propose(now + 1);
        }
        at
    }

    fn advance_to(&mut self, t_us: u64) {
        {
            let mut st = self.state.borrow_mut();
            st.now = st.now.max(t_us);
        }
        self.inner.advance_to(t_us);
        let now = self.now_us();
        // Errors here resurface on the next send/recv.
        let _ = self.flush_due(now);
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> Option<std::os::fd::RawFd> {
        self.inner.raw_fd()
    }

    fn set_ready(&mut self, readable: bool, writable: bool) {
        self.inner.set_ready(readable, writable);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LoopbackTransport;

    fn drain(t: &mut dyn Transport) -> Vec<u8> {
        let mut out = Vec::new();
        let mut buf = [0u8; 4096];
        while let Ok(n) = t.recv(&mut buf) {
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        out
    }

    #[test]
    fn clean_plan_is_transparent() {
        let plan = FaultPlan::new(1);
        let (mut pair, log) = plan.wrap_pair(LoopbackTransport::pair(64));
        assert_eq!(pair.client.send(b"hello").unwrap(), 5);
        assert_eq!(drain(pair.service.as_mut()), b"hello");
        assert_eq!(
            log.events(),
            vec![FaultEvent { dir: FaultDir::ToService, chunk: 1, kind: FaultKind::Delivered }]
        );
    }

    #[test]
    fn same_seed_same_event_log() {
        let run = |seed: u64| {
            let plan = FaultPlan::new(seed)
                .with_drop(100)
                .with_dup(100)
                .with_corrupt(100)
                .with_reorder(100);
            let (mut pair, log) = plan.wrap_pair(LoopbackTransport::pair(1 << 16));
            for i in 0..200u8 {
                pair.client.send(&[i; 16]).unwrap();
                pair.service.send(&[i; 8]).unwrap();
            }
            (log.events(), log.fingerprint())
        };
        let (ev1, fp1) = run(7);
        let (ev2, fp2) = run(7);
        assert_eq!(ev1, ev2);
        assert_eq!(fp1, fp2);
        let (_, fp3) = run(8);
        assert_ne!(fp1, fp3, "different seed, different faults");
        assert!(ev1.iter().any(|e| e.kind == FaultKind::Dropped));
        assert!(ev1.iter().any(|e| matches!(e.kind, FaultKind::Corrupted { .. })));
    }

    #[test]
    fn corruption_always_flips_exactly_one_byte() {
        let plan = FaultPlan::new(3).with_corrupt(1000);
        let (mut pair, log) = plan.wrap_pair(LoopbackTransport::pair(1 << 16));
        let sent = [0x11u8; 100];
        pair.client.send(&sent).unwrap();
        let got = drain(pair.service.as_mut());
        assert_eq!(got.len(), 100);
        let diffs = got.iter().zip(sent.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
        assert!(matches!(log.events()[0].kind, FaultKind::Corrupted { .. }));
    }

    #[test]
    fn reorder_swaps_adjacent_chunks() {
        let plan = FaultPlan::new(5).with_reorder(1000);
        let (mut pair, _log) = plan.wrap_pair(LoopbackTransport::pair(1 << 16));
        pair.client.send(&[0xAA; 4]).unwrap();
        assert_eq!(pair.service.readable(), 0, "first chunk held");
        pair.client.send(&[0xBB; 4]).unwrap();
        let got = drain(pair.service.as_mut());
        assert_eq!(got, [0xBB, 0xBB, 0xBB, 0xBB, 0xAA, 0xAA, 0xAA, 0xAA]);
    }

    #[test]
    fn held_chunk_releases_on_advance() {
        let plan = FaultPlan::new(5).with_reorder(1000);
        let (mut pair, _log) = plan.wrap_pair(LoopbackTransport::pair(1 << 16));
        pair.client.send(&[0xAA; 4]).unwrap();
        assert_eq!(pair.service.readable(), 0);
        let at = pair.service.next_ready_at().expect("held chunk keeps the pair live");
        pair.client.advance_to(at);
        assert_eq!(drain(pair.service.as_mut()), [0xAA; 4]);
    }

    #[test]
    fn partition_parks_then_heals() {
        let plan = FaultPlan::new(9).with_partition(1, 500);
        let (mut pair, log) = plan.wrap_pair(LoopbackTransport::pair(1 << 16));
        pair.client.send(b"one").unwrap();
        pair.client.send(b"two").unwrap();
        pair.client.send(b"three").unwrap();
        assert_eq!(drain(pair.service.as_mut()), b"one", "post-partition chunks parked");
        let heal = pair.service.next_ready_at().expect("partition must advertise its heal");
        assert!(heal >= 500);
        pair.client.advance_to(heal);
        pair.service.advance_to(heal);
        assert_eq!(drain(pair.service.as_mut()), b"twothree", "backlog flushed in order");
        let kinds: Vec<FaultKind> = log.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&FaultKind::PartitionStart));
        assert!(kinds.contains(&FaultKind::PartitionHeal));
    }

    #[test]
    fn link_drop_closes_both_ends() {
        let plan = FaultPlan::new(11).with_link_drop_after(2);
        let (mut pair, log) = plan.wrap_pair(LoopbackTransport::pair(1 << 16));
        pair.client.send(b"aa").unwrap();
        pair.client.send(b"bb").unwrap();
        assert_eq!(pair.client.send(b"cc"), Err(TransportError::Closed));
        assert!(pair.client.is_closed());
        assert_eq!(drain(pair.service.as_mut()), b"aabb", "backlog drains before Closed");
        let mut buf = [0u8; 8];
        assert_eq!(pair.service.recv(&mut buf), Err(TransportError::Closed));
        assert!(log.events().iter().any(|e| e.kind == FaultKind::LinkDropped));
    }

    #[test]
    fn for_session_derives_distinct_streams() {
        let base = FaultPlan::new(42).with_drop(500);
        let run = |plan: FaultPlan| {
            let (mut pair, log) = plan.wrap_pair(LoopbackTransport::pair(1 << 16));
            for i in 0..64u8 {
                pair.client.send(&[i; 4]).unwrap();
            }
            log.fingerprint()
        };
        assert_ne!(run(base.for_session(0)), run(base.for_session(1)));
        assert_eq!(run(base.for_session(3)), run(base.for_session(3)));
    }

    #[test]
    fn journaled_wrap_mirrors_injected_faults_onto_the_flight_recorder() {
        use fractal_telemetry::{Journal, VirtualClock};
        use std::sync::Arc;
        let journal = Arc::new(Journal::new(128).with_clock(VirtualClock::shared(1)));
        let plan = FaultPlan::new(7).with_drop(300).with_dup(200).with_corrupt(200);
        let (mut pair, log) =
            plan.wrap_pair_journaled(LoopbackTransport::pair(1 << 16), journal.session(42));
        for i in 0..64u8 {
            pair.client.send(&[i; 8]).unwrap();
        }
        let injected =
            log.events().iter().filter(|e| e.kind != FaultKind::Delivered).count() as u64;
        assert!(injected > 0, "rates that high must inject something");
        let snap = journal.snapshot();
        assert_eq!(snap.recorded, injected, "one journal event per injected fault");
        let tail = snap.tail(42, usize::MAX);
        assert_eq!(tail.len() as u64, injected.min(128));
        assert!(tail.iter().all(|e| e.kind.starts_with("fault:")), "{tail:?}");
        // Clean deliveries never hit the ring.
        assert!(log.events().iter().any(|e| e.kind == FaultKind::Delivered));
    }
}
