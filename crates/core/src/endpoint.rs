//! INP endpoint state machines: the "protocol integrity" the paper's INP
//! header maintains (§3.3).
//!
//! Figure 4 defines a strict message order; a real deployment must reject
//! out-of-order or repeated messages rather than act on them. Two state
//! machines enforce that order:
//!
//! * [`ClientEndpoint`] — drives INIT_REQ → … → APP_REQ on the client;
//! * [`ProxyEndpoint`] — accepts INIT_REQ then CLI_META_REP on the proxy.
//!
//! Both are pure state trackers over [`InpMessage`] values: the transport
//! and the negotiation logic stay elsewhere, which keeps the machines
//! exhaustively testable.

use crate::error::WireError;
use crate::inp::InpMessage;
use crate::meta::{AppId, ClientEnv, PadMeta};

/// Client-side negotiation states, in Figure 4 order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClientState {
    /// Nothing sent yet.
    Idle,
    /// INIT_REQ sent; awaiting INIT_REP.
    AwaitInitRep,
    /// INIT_REP seen; awaiting CLI_META_REQ.
    AwaitMetaReq,
    /// CLI_META_REP sent; awaiting PAD_META_REP.
    AwaitPadMeta,
    /// Negotiation complete; PADs known.
    Negotiated,
}

/// A protocol-order violation.
#[derive(Clone, PartialEq, Debug)]
pub enum ProtocolViolation {
    /// A message arrived that the current state does not accept.
    UnexpectedMessage {
        /// State at the time.
        state: &'static str,
        /// Offending message name.
        message: &'static str,
    },
    /// The peer's bytes failed to parse.
    Malformed(WireError),
}

impl core::fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtocolViolation::UnexpectedMessage { state, message } => {
                write!(f, "unexpected {message} in state {state}")
            }
            ProtocolViolation::Malformed(e) => write!(f, "malformed message: {e}"),
        }
    }
}

impl std::error::Error for ProtocolViolation {}

/// The client half of the INP exchange.
#[derive(Debug)]
pub struct ClientEndpoint {
    app_id: AppId,
    env: ClientEnv,
    state: ClientState,
    pads: Vec<PadMeta>,
}

impl ClientEndpoint {
    /// Creates an endpoint for one negotiation.
    pub fn new(app_id: AppId, env: ClientEnv) -> ClientEndpoint {
        ClientEndpoint { app_id, env, state: ClientState::Idle, pads: Vec::new() }
    }

    /// Current state.
    pub fn state(&self) -> ClientState {
        self.state
    }

    /// Produces INIT_REQ (only valid from `Idle`).
    pub fn start(&mut self, payload: Vec<u8>) -> Result<InpMessage, ProtocolViolation> {
        if self.state != ClientState::Idle {
            return Err(ProtocolViolation::UnexpectedMessage {
                state: self.state_name(),
                message: "start()",
            });
        }
        self.state = ClientState::AwaitInitRep;
        Ok(InpMessage::InitReq { app_id: self.app_id, payload })
    }

    /// Feeds raw bytes from the proxy; returns the client's reply when the
    /// protocol calls for one.
    pub fn on_bytes(&mut self, bytes: &[u8]) -> Result<Option<InpMessage>, ProtocolViolation> {
        let msg = InpMessage::from_bytes(bytes).map_err(ProtocolViolation::Malformed)?;
        self.on_message(&msg)
    }

    /// Feeds a parsed message from the proxy.
    pub fn on_message(
        &mut self,
        msg: &InpMessage,
    ) -> Result<Option<InpMessage>, ProtocolViolation> {
        match (self.state, msg) {
            (ClientState::AwaitInitRep, InpMessage::InitRep) => {
                self.state = ClientState::AwaitMetaReq;
                Ok(None)
            }
            (ClientState::AwaitMetaReq, InpMessage::CliMetaReq) => {
                self.state = ClientState::AwaitPadMeta;
                Ok(Some(InpMessage::CliMetaRep { dev: self.env.dev, ntwk: self.env.ntwk }))
            }
            (ClientState::AwaitPadMeta, InpMessage::PadMetaRep { pads }) => {
                self.pads = pads.clone();
                self.state = ClientState::Negotiated;
                Ok(None)
            }
            (_, m) => Err(ProtocolViolation::UnexpectedMessage {
                state: self.state_name(),
                message: m.name(),
            }),
        }
    }

    /// The negotiated PADs (only after `Negotiated`).
    pub fn negotiated(&self) -> Option<&[PadMeta]> {
        (self.state == ClientState::Negotiated).then_some(self.pads.as_slice())
    }

    fn state_name(&self) -> &'static str {
        match self.state {
            ClientState::Idle => "Idle",
            ClientState::AwaitInitRep => "AwaitInitRep",
            ClientState::AwaitMetaReq => "AwaitMetaReq",
            ClientState::AwaitPadMeta => "AwaitPadMeta",
            ClientState::Negotiated => "Negotiated",
        }
    }
}

/// Proxy-side negotiation states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProxyState {
    /// Awaiting INIT_REQ.
    AwaitInit,
    /// INIT_REP + CLI_META_REQ sent; awaiting CLI_META_REP.
    AwaitMetaRep,
    /// PAD_META_REP sent.
    Done,
}

/// The proxy half of the INP exchange. Negotiation itself is delegated to
/// the closure the caller supplies (normally
/// [`AdaptationProxy::negotiate`](crate::proxy::AdaptationProxy::negotiate)).
#[derive(Debug)]
pub struct ProxyEndpoint {
    state: ProxyState,
    app_id: Option<AppId>,
}

impl Default for ProxyEndpoint {
    fn default() -> Self {
        Self::new()
    }
}

impl ProxyEndpoint {
    /// Creates an endpoint for one client connection.
    pub fn new() -> ProxyEndpoint {
        ProxyEndpoint { state: ProxyState::AwaitInit, app_id: None }
    }

    /// Current state.
    pub fn state(&self) -> ProxyState {
        self.state
    }

    /// Rewinds the endpoint to await a fresh INIT_REQ on the same
    /// connection — the proxy side of a mid-session mobility handoff,
    /// where the client renegotiates for its new environment.
    pub fn reset(&mut self) {
        self.state = ProxyState::AwaitInit;
        self.app_id = None;
    }

    /// Feeds a client message; `negotiate` is invoked exactly once, at the
    /// CLI_META_REP step. Returns the message(s) to send back.
    pub fn on_message<F>(
        &mut self,
        msg: &InpMessage,
        mut negotiate: F,
    ) -> Result<Vec<InpMessage>, ProtocolViolation>
    where
        F: FnMut(AppId, ClientEnv) -> Vec<PadMeta>,
    {
        match (self.state, msg) {
            (ProxyState::AwaitInit, InpMessage::InitReq { app_id, .. }) => {
                self.app_id = Some(*app_id);
                self.state = ProxyState::AwaitMetaRep;
                Ok(vec![InpMessage::InitRep, InpMessage::CliMetaReq])
            }
            (ProxyState::AwaitMetaRep, InpMessage::CliMetaRep { dev, ntwk }) => {
                let app_id = self.app_id.expect("set at InitReq");
                let pads = negotiate(app_id, ClientEnv { dev: *dev, ntwk: *ntwk });
                self.state = ProxyState::Done;
                Ok(vec![InpMessage::PadMetaRep { pads }])
            }
            (_, m) => Err(ProtocolViolation::UnexpectedMessage {
                state: match self.state {
                    ProxyState::AwaitInit => "AwaitInit",
                    ProxyState::AwaitMetaRep => "AwaitMetaRep",
                    ProxyState::Done => "Done",
                },
                message: m.name(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::ClientClass;
    use crate::proxy::AdaptationProxy;
    use crate::server::AdaptiveContentMode;
    use crate::testbed::Testbed;

    fn wired() -> (ClientEndpoint, ProxyEndpoint, AdaptationProxy, AppId) {
        let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
        let client = ClientEndpoint::new(tb.app_id, ClientClass::PdaBluetooth.env());
        (client, ProxyEndpoint::new(), tb.proxy, tb.app_id)
    }

    /// Drives the complete Figure 4 exchange over serialized bytes.
    #[test]
    fn full_exchange_over_the_wire() {
        let (mut client, mut proxy_ep, proxy, _) = wired();

        let init = client.start(b"GET page".to_vec()).unwrap();
        let replies = proxy_ep
            .on_message(&InpMessage::from_bytes(&init.to_bytes()).unwrap(), |a, e| {
                proxy.negotiate(a, e).unwrap()
            })
            .unwrap();
        assert_eq!(replies.len(), 2, "INIT_REP + CLI_META_REQ");

        let mut to_proxy = Vec::new();
        for r in &replies {
            if let Some(reply) = client.on_bytes(&r.to_bytes()).unwrap() {
                to_proxy.push(reply);
            }
        }
        assert_eq!(to_proxy.len(), 1, "CLI_META_REP");

        let pad_meta =
            proxy_ep.on_message(&to_proxy[0], |a, e| proxy.negotiate(a, e).unwrap()).unwrap();
        assert_eq!(pad_meta.len(), 1);
        assert!(client.on_bytes(&pad_meta[0].to_bytes()).unwrap().is_none());

        let pads = client.negotiated().expect("negotiated");
        assert_eq!(pads.len(), 1);
        assert_eq!(proxy_ep.state(), ProxyState::Done);
    }

    #[test]
    fn client_rejects_out_of_order_messages() {
        let (mut client, _, proxy, app_id) = wired();
        // PAD_META_REP before anything else.
        let pads = proxy.negotiate(app_id, ClientClass::PdaBluetooth.env()).unwrap();
        let premature = InpMessage::PadMetaRep { pads };
        let err = client.on_message(&premature).unwrap_err();
        assert!(matches!(err, ProtocolViolation::UnexpectedMessage { .. }));
        // State unchanged; the proper flow still works.
        assert_eq!(client.state(), ClientState::Idle);
    }

    #[test]
    fn client_rejects_repeated_init_rep() {
        let (mut client, _, _, _) = wired();
        client.start(vec![]).unwrap();
        client.on_message(&InpMessage::InitRep).unwrap();
        let err = client.on_message(&InpMessage::InitRep).unwrap_err();
        assert!(matches!(err, ProtocolViolation::UnexpectedMessage { .. }));
    }

    #[test]
    fn client_rejects_double_start() {
        let (mut client, _, _, _) = wired();
        client.start(vec![]).unwrap();
        assert!(client.start(vec![]).is_err());
    }

    #[test]
    fn proxy_rejects_meta_rep_before_init() {
        let (_, mut proxy_ep, _, _) = wired();
        let env = ClientClass::DesktopLan.env();
        let msg = InpMessage::CliMetaRep { dev: env.dev, ntwk: env.ntwk };
        let err = proxy_ep.on_message(&msg, |_, _| vec![]).unwrap_err();
        assert!(matches!(err, ProtocolViolation::UnexpectedMessage { .. }));
        assert_eq!(proxy_ep.state(), ProxyState::AwaitInit);
    }

    #[test]
    fn malformed_bytes_reported_not_acted_on() {
        let (mut client, _, _, _) = wired();
        client.start(vec![]).unwrap();
        let err = client.on_bytes(b"garbage").unwrap_err();
        assert!(matches!(err, ProtocolViolation::Malformed(_)));
        assert_eq!(client.state(), ClientState::AwaitInitRep);
    }

    #[test]
    fn negotiated_is_gated_on_state() {
        let (mut client, _, _, _) = wired();
        assert!(client.negotiated().is_none());
        client.start(vec![]).unwrap();
        assert!(client.negotiated().is_none());
    }
}
