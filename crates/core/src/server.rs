//! The application server: versioned adaptive content, reactive vs.
//! proactive generation, and the PAD-encoded session responses.
//!
//! §3.1: "adaptive content can be generated either reactively or
//! proactively. The former is suitable for the case in which content keeps
//! changing … the price of computing the dynamic adaptive content maybe
//! high. On the contrary, the latter, where adaptive content is
//! precalculated in advance and saved in memory or disk consumes less CPU
//! and has large memory or disk space requirements."
//!
//! Both stores live behind an [`Epoch`]: `publish` takes `&self`, builds
//! the successor snapshot (new version appended, proactive entries
//! precomputed) entirely off the read path, then swaps it in. Sessions
//! pin one generation per `respond`, so a racing republish can never show
//! them a torn version chain — and since version chains are append-only,
//! a session that negotiated version `v` decodes against exactly `v` no
//! matter how many publishes land mid-flight.

use std::collections::HashMap;

use bytes::Bytes;
use fractal_protocols::bitmap::Bitmap;
use fractal_protocols::direct::Direct;
use fractal_protocols::fixedblock::FixedBlock;
use fractal_protocols::gzip::Gzip;
use fractal_protocols::varyblock::VaryBlock;
use fractal_protocols::{DiffCodec, ProtocolId};

use crate::epoch::{Epoch, EpochStats};
use crate::error::FractalError;
use crate::meta::AppId;

/// Reactive vs. proactive adaptive-content generation (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdaptiveContentMode {
    /// Encode per request; server compute is on the critical path.
    Reactive,
    /// Pre-encode into the adaptive-content store; requests are lookups.
    Proactive,
}

/// One encoded response plus its accounting.
#[derive(Clone, Debug)]
pub struct EncodedResponse {
    /// The protocol used.
    pub protocol: ProtocolId,
    /// Encoded payload. A [`Bytes`] view: serving a proactive-store entry
    /// or re-serving a cached response clones a refcount, not the buffer.
    pub payload: Bytes,
    /// Whether the encode ran on the request path (false = served from the
    /// proactive store).
    pub computed_on_request: bool,
}

/// Memory accounting for the proactive store — the space/CPU trade-off the
/// paper calls out.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StoreStats {
    /// Pre-encoded entries held.
    pub entries: usize,
    /// Bytes held.
    pub bytes: u64,
}

type StoreKey = (u32, Option<u32>, u32, ProtocolId);

/// The epoch-versioned snapshot behind one server: the version chains and
/// the proactive store publish together, so a reader that pins the
/// snapshot sees them consistent. Cloning copies the two indexes; every
/// payload is a [`Bytes`] refcount.
#[derive(Clone, Default)]
struct ServerState {
    /// content id → versions (index = version number). Append-only.
    contents: HashMap<u32, Vec<Bytes>>,
    /// Proactive store: (content, have, want, protocol) → payload.
    store: HashMap<StoreKey, Bytes>,
}

/// The application server.
pub struct ApplicationServer {
    /// Application this server provides.
    pub app_id: AppId,
    mode: AdaptiveContentMode,
    /// Deployed server-side PADs.
    protocols: Vec<ProtocolId>,
    state: Epoch<ServerState>,
}

impl core::fmt::Debug for ApplicationServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let state = self.state.pin();
        f.debug_struct("ApplicationServer")
            .field("app_id", &self.app_id)
            .field("mode", &self.mode)
            .field("protocols", &self.protocols)
            .field("contents", &state.contents.len())
            .field("store", &self.store_stats())
            .field("generation", &self.state.generation())
            .field("epoch", &self.state.stats())
            .finish()
    }
}

/// Builds the codec for one protocol (the server-side PAD function).
pub fn codec_for(protocol: ProtocolId) -> Box<dyn DiffCodec> {
    match protocol {
        ProtocolId::Direct => Box::new(Direct),
        ProtocolId::Gzip => Box::new(Gzip),
        ProtocolId::Bitmap => Box::new(Bitmap::default()),
        ProtocolId::VaryBlock => Box::new(VaryBlock::default()),
        ProtocolId::FixedBlock => Box::new(FixedBlock::default()),
    }
}

impl ApplicationServer {
    /// Creates a server with the given deployed protocols.
    pub fn new(app_id: AppId, protocols: &[ProtocolId], mode: AdaptiveContentMode) -> Self {
        ApplicationServer {
            app_id,
            mode,
            protocols: protocols.to_vec(),
            state: Epoch::new(ServerState::default()),
        }
    }

    /// Current generation mode.
    pub fn mode(&self) -> AdaptiveContentMode {
        self.mode
    }

    /// Publishes a new version of `content_id`; returns the version number.
    /// In proactive mode the adaptive content for the new version is
    /// pre-computed immediately (the off-request-path cost).
    ///
    /// Takes `&self`: the successor snapshot — appended version chain plus
    /// any proactive precomputes — is built off the read path and swapped
    /// in atomically, so publish runs concurrently with live `respond`
    /// traffic. Concurrent publishers serialize; readers never wait.
    pub fn publish(&self, content_id: u32, bytes: impl Into<Bytes>) -> u32 {
        let bytes = bytes.into();
        self.state.publish_with(|state| {
            let versions = state.contents.entry(content_id).or_default();
            versions.push(bytes);
            let version = (versions.len() - 1) as u32;
            if self.mode == AdaptiveContentMode::Proactive {
                precompute(state, &self.protocols, content_id, version);
            }
            version
        })
    }

    /// Latest version number of `content_id`.
    pub fn latest_version(&self, content_id: u32) -> Option<u32> {
        self.state.pin().contents.get(&content_id).map(|v| (v.len() - 1) as u32)
    }

    /// Raw bytes of a version (for tests and the session runner's oracle).
    /// An O(1) [`Bytes`] view into the pinned snapshot.
    pub fn content(&self, content_id: u32, version: u32) -> Option<Bytes> {
        self.state.pin().contents.get(&content_id)?.get(version as usize).cloned()
    }

    /// The snapshot generation currently being served (0 until the first
    /// publish; +1 per publish). Monotonic — the throughput bench asserts
    /// it against `latest_version` during the live-republish pass.
    pub fn generation(&self) -> u64 {
        self.state.generation()
    }

    /// Epoch accounting: generations published / retired / still live.
    pub fn epoch_stats(&self) -> EpochStats {
        self.state.stats()
    }

    /// Handles the encoded-content part of an `APP_REQ`: the client holds
    /// `have_version` (or nothing) and wants `want_version` encoded with
    /// `protocol`.
    ///
    /// Takes `&self` and pins one snapshot generation for the duration:
    /// any number of sessions — reactor-driven or thread-parallel — serve
    /// concurrently from one shared server, and a racing
    /// [`publish`](Self::publish) can never tear the version chain out
    /// from under a response in flight. Reactive encodes are pure
    /// computation over the pinned [`Bytes`] store and allocate their own
    /// output.
    pub fn respond(
        &self,
        content_id: u32,
        have_version: Option<u32>,
        want_version: u32,
        protocol: ProtocolId,
    ) -> Result<EncodedResponse, FractalError> {
        if !self.protocols.contains(&protocol) {
            return Err(FractalError::ProtocolNotDeployed(protocol));
        }
        let state = self.state.pin();
        let versions =
            state.contents.get(&content_id).ok_or(FractalError::UnknownContent(content_id))?;
        let new =
            versions.get(want_version as usize).ok_or(FractalError::UnknownContent(content_id))?;

        if self.mode == AdaptiveContentMode::Proactive {
            if let Some(payload) =
                state.store.get(&(content_id, have_version, want_version, protocol))
            {
                return Ok(EncodedResponse {
                    protocol,
                    payload: payload.clone(),
                    computed_on_request: false,
                });
            }
        }

        let old: &[u8] = match have_version {
            Some(v) => versions
                .get(v as usize)
                .map(Bytes::as_ref)
                .ok_or(FractalError::UnknownContent(content_id))?,
            None => &[],
        };
        let payload = codec_for(protocol).encode(old, new);
        Ok(EncodedResponse { protocol, payload, computed_on_request: true })
    }

    /// Proactive-store accounting.
    pub fn store_stats(&self) -> StoreStats {
        let state = self.state.pin();
        StoreStats {
            entries: state.store.len(),
            bytes: state.store.values().map(|p| p.len() as u64).sum(),
        }
    }
}

/// Pre-encodes the cold fetch and the adjacent-pair diff for `version`
/// into the successor snapshot's proactive store. Runs inside
/// `publish_with`, i.e. off the read path.
fn precompute(state: &mut ServerState, protocols: &[ProtocolId], content_id: u32, version: u32) {
    let versions = &state.contents[&content_id];
    let new = versions[version as usize].clone();
    let old_versions: Vec<(Option<u32>, Bytes)> = {
        let mut v: Vec<(Option<u32>, Bytes)> = vec![(None, Bytes::new())];
        if version > 0 {
            v.push((Some(version - 1), versions[version as usize - 1].clone()));
        }
        v
    };
    for &protocol in protocols {
        let codec = codec_for(protocol);
        for (have, old) in &old_versions {
            let payload = codec.encode(old, &new);
            state.store.insert((content_id, *have, version, protocol), payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn content(seed: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(seed).wrapping_add(seed)).collect()
    }

    fn server(mode: AdaptiveContentMode) -> ApplicationServer {
        ApplicationServer::new(AppId(1), &ProtocolId::PAPER_FOUR, mode)
    }

    #[test]
    fn publish_and_version_chain() {
        let s = server(AdaptiveContentMode::Reactive);
        assert_eq!(s.publish(7, content(1, 100)), 0);
        assert_eq!(s.publish(7, content(2, 100)), 1);
        assert_eq!(s.latest_version(7), Some(1));
        assert_eq!(s.latest_version(8), None);
        assert_eq!(s.content(7, 0).unwrap().len(), 100);
        assert_eq!(s.generation(), 2, "one snapshot generation per publish");
    }

    #[test]
    fn reactive_respond_round_trips_every_protocol() {
        let s = server(AdaptiveContentMode::Reactive);
        let v0 = content(1, 5000);
        let v1 = content(2, 5000);
        s.publish(7, v0.clone());
        s.publish(7, v1.clone());
        for p in ProtocolId::PAPER_FOUR {
            let resp = s.respond(7, Some(0), 1, p).unwrap();
            assert!(resp.computed_on_request);
            let decoded = codec_for(p).decode(&v0, &resp.payload).unwrap();
            assert_eq!(decoded, v1, "{p}");
        }
    }

    #[test]
    fn proactive_serves_from_store() {
        let s = server(AdaptiveContentMode::Proactive);
        s.publish(7, content(1, 2000));
        s.publish(7, content(2, 2000));
        // Cold fetch and warm fetch are both precomputed.
        let cold = s.respond(7, None, 1, ProtocolId::Gzip).unwrap();
        assert!(!cold.computed_on_request);
        let warm = s.respond(7, Some(0), 1, ProtocolId::VaryBlock).unwrap();
        assert!(!warm.computed_on_request);
        assert!(s.store_stats().entries > 0);
        assert!(s.store_stats().bytes > 0);
    }

    #[test]
    fn proactive_falls_back_to_reactive_for_unexpected_pairs() {
        let s = server(AdaptiveContentMode::Proactive);
        s.publish(7, content(1, 1000));
        s.publish(7, content(2, 1000));
        s.publish(7, content(3, 1000));
        // have=0 want=2 was not precomputed (only adjacent pairs are).
        let resp = s.respond(7, Some(0), 2, ProtocolId::Gzip).unwrap();
        assert!(resp.computed_on_request);
    }

    #[test]
    fn unknown_content_and_versions_rejected() {
        let s = server(AdaptiveContentMode::Reactive);
        assert!(matches!(
            s.respond(9, None, 0, ProtocolId::Direct),
            Err(FractalError::UnknownContent(9))
        ));
        s.publish(7, content(1, 10));
        assert!(s.respond(7, None, 5, ProtocolId::Direct).is_err());
        assert!(s.respond(7, Some(9), 0, ProtocolId::Direct).is_err());
    }

    #[test]
    fn undeployed_protocol_rejected() {
        let s =
            ApplicationServer::new(AppId(1), &[ProtocolId::Direct], AdaptiveContentMode::Reactive);
        s.publish(7, content(1, 10));
        assert_eq!(
            s.respond(7, None, 0, ProtocolId::Gzip).unwrap_err(),
            FractalError::ProtocolNotDeployed(ProtocolId::Gzip)
        );
    }

    #[test]
    fn proactive_store_grows_with_versions() {
        let s = server(AdaptiveContentMode::Proactive);
        s.publish(7, content(1, 1000));
        let after_one = s.store_stats().entries;
        s.publish(7, content(2, 1000));
        let after_two = s.store_stats().entries;
        assert!(after_two > after_one);
        // v0: 4 protocols × cold; v1: 4 × (cold + warm).
        assert_eq!(after_one, 4);
        assert_eq!(after_two, 12);
    }

    #[test]
    fn debug_dump_shows_deployments() {
        // The STALL_*.txt satellite: a debug dump must show what the
        // server actually had deployed — protocols and store stats.
        let s = server(AdaptiveContentMode::Proactive);
        s.publish(7, content(1, 1000));
        let dump = format!("{s:?}");
        assert!(dump.contains("protocols"), "{dump}");
        assert!(dump.contains("Gzip"), "{dump}");
        assert!(dump.contains("StoreStats"), "{dump}");
        assert!(dump.contains("generation"), "{dump}");
    }

    #[test]
    fn concurrent_publish_and_respond_never_tear() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let s = std::sync::Arc::new(server(AdaptiveContentMode::Proactive));
        s.publish(7, content(1, 2000));
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let s = &s;
                let done = &done;
                scope.spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        let latest = s.latest_version(7).unwrap();
                        // The version we just observed stays servable: the
                        // chain is append-only within a pinned snapshot and
                        // across publishes.
                        let resp = s.respond(7, None, latest, ProtocolId::Gzip).unwrap();
                        let decoded = codec_for(ProtocolId::Gzip).decode(&[], &resp.payload);
                        let expected = s.content(7, latest).unwrap();
                        assert_eq!(decoded.unwrap(), expected);
                    }
                });
            }
            for seed in 2..40u8 {
                s.publish(7, content(seed, 2000));
            }
            done.store(true, Ordering::Relaxed);
        });
        assert_eq!(s.latest_version(7), Some(38));
    }
}
