//! The normalized ratio matrices of Equation 2: 𝓐 (processor × PAD),
//! 𝓑 (OS × PAD), 𝓡 (network × PAD).
//!
//! "This linear model is not so accurate because other parameters of the
//! processor and networks introduce error" (§3.4.2) — the matrices correct
//! the linear estimate multiplicatively, and an ∞ entry disqualifies a PAD
//! outright (the paper's WinMedia-on-PalmOS example).
//!
//! Entries default to 1.0 (pure linear model) when unspecified, matching
//! the paper: "Some of the data come from the test, others we set as 1 to
//! follow the linear model."

use std::collections::HashMap;

use crate::meta::PadId;

/// One ratio matrix over a column type `C` (processor, OS, or network).
#[derive(Clone, Debug)]
pub struct RatioMatrix<C: Copy + Eq + std::hash::Hash> {
    entries: HashMap<(PadId, C), f64>,
}

impl<C: Copy + Eq + std::hash::Hash> Default for RatioMatrix<C> {
    fn default() -> Self {
        RatioMatrix { entries: HashMap::new() }
    }
}

impl<C: Copy + Eq + std::hash::Hash> RatioMatrix<C> {
    /// An all-ones matrix (pure linear model).
    pub fn ones() -> Self {
        Self::default()
    }

    /// Sets the ratio for `(pad, column)`. Use `f64::INFINITY` to
    /// disqualify the PAD on that column.
    pub fn set(&mut self, pad: PadId, column: C, ratio: f64) -> &mut Self {
        assert!(ratio > 0.0 || ratio.is_infinite(), "ratio must be positive or ∞");
        self.entries.insert((pad, column), ratio);
        self
    }

    /// Builder-style [`set`](Self::set).
    pub fn with(mut self, pad: PadId, column: C, ratio: f64) -> Self {
        self.set(pad, column, ratio);
        self
    }

    /// Looks up the ratio, defaulting to 1.0.
    pub fn get(&self, pad: PadId, column: C) -> f64 {
        self.entries.get(&(pad, column)).copied().unwrap_or(1.0)
    }

    /// Whether the PAD is disqualified (∞) on this column.
    pub fn disqualified(&self, pad: PadId, column: C) -> bool {
        self.get(pad, column).is_infinite()
    }

    /// Number of explicit (non-default) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the matrix is pure-linear (no explicit entries).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The three matrices bundled, as consumed by the overhead model.
#[derive(Clone, Debug, Default)]
pub struct Ratios {
    /// 𝓐 — processor-type ratios (Equation 4).
    pub cpu: RatioMatrix<crate::meta::CpuType>,
    /// 𝓑 — operating-system ratios (Equation 5).
    pub os: RatioMatrix<crate::meta::OsType>,
    /// 𝓡 — network-type ratios (Equation 6).
    pub net: RatioMatrix<fractal_net::link::LinkKind>,
}

impl Ratios {
    /// All-ones (pure linear model) — the ablation baseline.
    pub fn linear() -> Ratios {
        Ratios::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{CpuType, OsType};

    #[test]
    fn defaults_to_one() {
        let m: RatioMatrix<CpuType> = RatioMatrix::ones();
        assert_eq!(m.get(PadId(1), CpuType::Pxa255), 1.0);
        assert!(m.is_empty());
    }

    #[test]
    fn set_and_get() {
        let mut m: RatioMatrix<CpuType> = RatioMatrix::ones();
        m.set(PadId(1), CpuType::Pxa255, 1.1);
        assert_eq!(m.get(PadId(1), CpuType::Pxa255), 1.1);
        assert_eq!(m.get(PadId(1), CpuType::PentiumIv2000), 1.0);
        assert_eq!(m.get(PadId(2), CpuType::Pxa255), 1.0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn infinity_disqualifies() {
        let m: RatioMatrix<OsType> =
            RatioMatrix::ones().with(PadId(5), OsType::PalmOs, f64::INFINITY);
        assert!(m.disqualified(PadId(5), OsType::PalmOs));
        assert!(!m.disqualified(PadId(5), OsType::WinCe42));
    }

    /// The §3.4.2 example: WinMedia runs on WinCE but not PalmOS; Kinoma
    /// the reverse. Without the matrix the linear model picks the player
    /// that cannot run at all.
    #[test]
    fn winmedia_kinoma_example() {
        let winmedia = PadId(100);
        let kinoma = PadId(101);
        let m: RatioMatrix<OsType> = RatioMatrix::ones()
            .with(winmedia, OsType::WinCe42, 1.0)
            .with(winmedia, OsType::PalmOs, f64::INFINITY)
            .with(kinoma, OsType::WinCe42, f64::INFINITY)
            .with(kinoma, OsType::PalmOs, 1.0);

        // Linear compute estimates on WinCE: Kinoma looks faster…
        let linear = |_pad: PadId| -> f64 {
            if _pad == kinoma {
                2.0
            } else {
                5.0
            }
        };
        // …but the adjusted cost disqualifies it.
        let adjusted = |pad: PadId| -> f64 { linear(pad) * m.get(pad, OsType::WinCe42) };
        assert!(adjusted(kinoma).is_infinite());
        assert!(adjusted(winmedia) < adjusted(kinoma));
    }

    #[test]
    #[should_panic(expected = "ratio must be positive")]
    fn rejects_nonpositive_ratio() {
        let mut m: RatioMatrix<CpuType> = RatioMatrix::ones();
        m.set(PadId(1), CpuType::Pxa255, 0.0);
    }

    #[test]
    fn bundled_ratios_default_linear() {
        let r = Ratios::linear();
        assert!(r.cpu.is_empty() && r.os.is_empty() && r.net.is_empty());
    }
}
