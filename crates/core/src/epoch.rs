//! Epoch-versioned publication: RCU-style snapshot swap for the write
//! path, so republish runs concurrently with millions of reads.
//!
//! The paper's proactive mode (§3.1) assumes adaptive content is
//! "precalculated in advance" — but a real edge deployment republishes
//! continuously *while serving*. [`Epoch<T>`] is the primitive that makes
//! that safe without a `&mut` anywhere on the read or write path:
//!
//! * **Readers pin a generation.** [`Epoch::pin`] hands back a
//!   [`Pinned<T>`] — a refcounted handle to one immutable snapshot. The
//!   read-side critical section is a single `Arc` clone under a
//!   lane-striped read lock ([`LANES`] stripes; each reader thread sticks
//!   to one lane, so readers never contend with each other on a lock
//!   word, and a publisher holds each lane's write lock only for the
//!   duration of one pointer store). Everything the reader does with the
//!   snapshot afterwards is lock-free: the generation it pinned is
//!   immutable forever.
//! * **Writers copy off-path and swap.** [`Epoch::publish_with`] clones
//!   the current value *outside* any reader-visible lock, applies the
//!   mutation to the private successor, then installs it lane by lane.
//!   Readers that raced the swap keep serving their pinned generation to
//!   completion — exactly RCU's grace-period contract, with the grace
//!   period delegated to `Arc`: a retired generation is reclaimed when
//!   its last pinned reader drops it.
//! * **Retired generations fold into telemetry.** The way
//!   [`IntrospectSource`](crate::introspect::IntrospectSource) folds
//!   retired shards into its baseline, a reclaimed generation folds into
//!   the epoch's counters: `fractal_epoch_publishes_total`,
//!   `fractal_epoch_generations_retired_total`, and the
//!   `fractal_epoch_live_generations` gauge (pinned-but-superseded
//!   generations show up as live > 1).
//!
//! ## Why RCU over striping
//!
//! The content store could instead be lock-striped like the proxy's
//! adaptation cache — but striping only shards *contention*; every read
//! still takes a lock that a writer can hold while it encodes, and a
//! multi-entry operation (publish + proactive precompute) would need
//! consistent multi-stripe locking. A snapshot swap gives every reader a
//! *consistent whole-store view* for the price of one refcount, makes
//! torn version chains structurally impossible, and keeps the writer's
//! critical section independent of how much work the publish does.
//!
//! The value is cloned per publish, so `T` should be a structure of
//! refcounted leaves ([`Bytes`](bytes::Bytes) payloads, `Arc`'d PATs):
//! the clone copies the *index*, never the payloads. Publish cost is
//! O(entries), not O(bytes) — the measured trade in
//! `BENCH_throughput.json`'s `"republish"` section.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

/// Number of read lanes. Each reader thread is assigned one lane round-
/// robin at first use; a publisher visits all of them. Power of two so
/// the assignment is a mask.
pub const LANES: usize = 8;

/// Process-wide lane dealer: thread → lane, assigned once per thread.
static NEXT_LANE: AtomicUsize = AtomicUsize::new(0);

fn reader_lane() -> usize {
    thread_local! {
        static LANE: usize = NEXT_LANE.fetch_add(1, Ordering::Relaxed) & (LANES - 1);
    }
    LANE.with(|l| *l)
}

/// Counters shared by an [`Epoch`] and every generation it ever
/// published, so reclamation (which happens on whatever thread drops the
/// last pin) can fold into the same ledger.
struct Shared {
    published: AtomicU64,
    reclaimed: AtomicU64,
    tele_retired: fractal_telemetry::Counter,
    tele_live: fractal_telemetry::Gauge,
}

impl Shared {
    fn live(&self) -> u64 {
        // `reclaimed` trails `published` by construction (a generation is
        // only reclaimed after it was published), plus the initial
        // generation which is published as generation 0.
        (1 + self.published.load(Ordering::Relaxed))
            .saturating_sub(self.reclaimed.load(Ordering::Relaxed))
    }
}

/// One immutable snapshot: the value plus its generation number. Readers
/// hold these through [`Pinned`]; dropping the last handle *is* the grace
/// period's end, and folds the generation into the retire counters.
struct Generation<T> {
    value: T,
    number: u64,
    shared: Arc<Shared>,
}

impl<T> Drop for Generation<T> {
    fn drop(&mut self) {
        self.shared.reclaimed.fetch_add(1, Ordering::Relaxed);
        self.shared.tele_retired.inc();
        self.shared.tele_live.set(self.shared.live() as i64);
    }
}

/// A pinned snapshot: wait-free, immutable access to one generation of
/// the epoch's value. Holding a pin never blocks a publisher — it only
/// delays reclamation of this one generation.
pub struct Pinned<T> {
    generation: Arc<Generation<T>>,
}

impl<T> Pinned<T> {
    /// The generation number this pin holds (0 = the initial value).
    pub fn generation(&self) -> u64 {
        self.generation.number
    }
}

impl<T> Clone for Pinned<T> {
    fn clone(&self) -> Self {
        Pinned { generation: Arc::clone(&self.generation) }
    }
}

impl<T> std::ops::Deref for Pinned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.generation.value
    }
}

impl<T: core::fmt::Debug> core::fmt::Debug for Pinned<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Pinned")
            .field("generation", &self.generation.number)
            .field("value", &self.generation.value)
            .finish()
    }
}

/// Publication accounting, the counter mirror of the telemetry series.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EpochStats {
    /// Successor generations installed (the initial value is not counted).
    pub published: u64,
    /// Generations whose last pin dropped (folded into telemetry).
    pub retired: u64,
    /// Generations currently alive: the current one plus any still pinned.
    pub live: u64,
}

/// An epoch-versioned value: `&self` reads *and* `&self` writes.
///
/// See the [module docs](self) for the full contract. In short:
/// [`pin`](Self::pin) is the read path (a refcount clone), and
/// [`publish_with`](Self::publish_with) is the write path (copy the
/// current value off-path, mutate the private copy, swap it in).
pub struct Epoch<T> {
    lanes: Vec<RwLock<Arc<Generation<T>>>>,
    /// Serializes publishers so each successor is built from the latest
    /// generation — readers never touch this lock.
    writer: Mutex<()>,
    shared: Arc<Shared>,
    tele_published: fractal_telemetry::Counter,
}

impl<T> Epoch<T> {
    /// Wraps `value` as generation 0.
    pub fn new(value: T) -> Epoch<T>
    where
        T: Clone,
    {
        let bundle = fractal_telemetry::Telemetry::global();
        let shared = Arc::new(Shared {
            published: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            tele_retired: bundle.counter("fractal_epoch_generations_retired_total"),
            tele_live: bundle.gauge("fractal_epoch_live_generations"),
        });
        let first = Arc::new(Generation { value, number: 0, shared: Arc::clone(&shared) });
        Epoch {
            lanes: (0..LANES).map(|_| RwLock::new(Arc::clone(&first))).collect(),
            writer: Mutex::new(()),
            shared,
            tele_published: bundle.counter("fractal_epoch_publishes_total"),
        }
    }

    /// Pins the current generation: a consistent, immutable snapshot the
    /// caller can hold for as long as it likes without ever blocking a
    /// publisher. The critical section is one `Arc` clone under this
    /// thread's lane read lock.
    pub fn pin(&self) -> Pinned<T> {
        let lane = &self.lanes[reader_lane()];
        Pinned { generation: Arc::clone(&lane.read()) }
    }

    /// Publishes a successor generation: clones the current value *off*
    /// the read path, applies `mutate` to the private copy, then installs
    /// it lane by lane. Readers pinned to older generations keep serving
    /// them; new pins observe the successor. Concurrent publishers are
    /// serialized (each successor builds on the latest generation).
    pub fn publish_with<R>(&self, mutate: impl FnOnce(&mut T) -> R) -> R
    where
        T: Clone,
    {
        let _exclusive = self.writer.lock();
        // Under the writer lock every lane holds the same generation;
        // lane 0 is as current as any.
        let current = Arc::clone(&self.lanes[0].read());
        let mut next = current.value.clone();
        let result = mutate(&mut next);
        let number = current.number + 1;
        drop(current);
        let successor =
            Arc::new(Generation { value: next, number, shared: Arc::clone(&self.shared) });
        for lane in &self.lanes {
            *lane.write() = Arc::clone(&successor);
        }
        self.shared.published.fetch_add(1, Ordering::Relaxed);
        self.tele_published.inc();
        self.shared.tele_live.set(self.shared.live() as i64);
        result
    }

    /// The current generation number (0 until the first publish).
    pub fn generation(&self) -> u64 {
        self.lanes[reader_lane()].read().number
    }

    /// Publication / reclamation accounting.
    pub fn stats(&self) -> EpochStats {
        EpochStats {
            published: self.shared.published.load(Ordering::Relaxed),
            retired: self.shared.reclaimed.load(Ordering::Relaxed),
            live: self.shared.live(),
        }
    }
}

impl<T: Clone + Default> Default for Epoch<T> {
    fn default() -> Self {
        Epoch::new(T::default())
    }
}

impl<T: core::fmt::Debug> core::fmt::Debug for Epoch<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let current = self.lanes[reader_lane()].read();
        f.debug_struct("Epoch")
            .field("generation", &current.number)
            .field("stats", &self.stats())
            .field("value", &current.value)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_sees_published_value() {
        let e = Epoch::new(vec![1u32]);
        assert_eq!(*e.pin(), vec![1]);
        assert_eq!(e.pin().generation(), 0);
        e.publish_with(|v| v.push(2));
        assert_eq!(*e.pin(), vec![1, 2]);
        assert_eq!(e.pin().generation(), 1);
        assert_eq!(e.generation(), 1);
    }

    #[test]
    fn old_pins_survive_republish_unchanged() {
        let e = Epoch::new(String::from("v0"));
        let old = e.pin();
        e.publish_with(|s| *s = "v1".into());
        e.publish_with(|s| *s = "v2".into());
        // The pinned generation is immutable forever — RCU's contract.
        assert_eq!(*old, "v0");
        assert_eq!(old.generation(), 0);
        assert_eq!(*e.pin(), "v2");
    }

    #[test]
    fn retired_generations_fold_into_stats() {
        let e = Epoch::new(0u64);
        let pinned = e.pin();
        for i in 1..=5 {
            e.publish_with(|v| *v = i);
        }
        let mid = e.stats();
        assert_eq!(mid.published, 5);
        // Generation 0 is still pinned; generations 1..=4 were reclaimed
        // the moment their lane references were replaced (no reader held
        // them), so live = current + the one straggler pin.
        assert_eq!(mid.live, 2);
        assert_eq!(mid.retired, 4);
        drop(pinned);
        let after = e.stats();
        assert_eq!(after.retired, 5);
        assert_eq!(after.live, 1, "only the current generation survives");
    }

    #[test]
    fn publish_returns_the_mutators_result() {
        let e = Epoch::new(Vec::<u8>::new());
        let len = e.publish_with(|v| {
            v.push(7);
            v.len()
        });
        assert_eq!(len, 1);
    }

    #[test]
    fn concurrent_readers_see_monotonic_generations() {
        let e = Arc::new(Epoch::new(0u64));
        let writer_done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let e = Arc::clone(&e);
                let done = Arc::clone(&writer_done);
                scope.spawn(move || {
                    let mut last = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        let pin = e.pin();
                        // Per-thread monotonicity: a reader never travels
                        // back in time, and the value always matches the
                        // generation that carries it.
                        assert!(pin.generation() >= last, "generation went backwards");
                        assert_eq!(*pin, pin.generation(), "torn value/generation pair");
                        last = pin.generation();
                    }
                });
            }
            let e = Arc::clone(&e);
            scope.spawn(move || {
                for _ in 0..2_000 {
                    e.publish_with(|v| *v += 1);
                }
                writer_done.store(true, Ordering::Relaxed);
            });
        });
        assert_eq!(*e.pin(), 2_000);
        assert_eq!(e.stats().published, 2_000);
    }

    #[test]
    fn concurrent_publishers_serialize_without_lost_updates() {
        let e = Arc::new(Epoch::new(0u64));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let e = Arc::clone(&e);
                scope.spawn(move || {
                    for _ in 0..500 {
                        e.publish_with(|v| *v += 1);
                    }
                });
            }
        });
        assert_eq!(*e.pin(), 2_000, "every publish built on the latest generation");
        assert_eq!(e.generation(), 2_000);
    }
}
