//! The end-to-end session runner: the full Figure 4 sequence over the
//! simulated network, producing the per-session measurements behind
//! Figures 10 and 11.
//!
//! Every step really happens — INP messages are built and parsed, PADs are
//! verified and deployed, the server encoder runs, and the client decodes
//! with the sandboxed FVM module — while *time* is charged from the
//! calibrated overhead model and link parameters, so results are exact and
//! reproducible.

use std::collections::HashMap;

use bytes::Bytes;
use fractal_net::link::Link;
use fractal_net::time::SimDuration;
use fractal_protocols::{ProtocolId, Traffic};

use crate::client::FractalClient;
use crate::error::FractalError;
use crate::inp::InpMessage;
use crate::meta::{AppId, PadId, PadMeta};
use crate::overhead::STD_CPU_MHZ;
use crate::proxy::AdaptationProxy;
use crate::server::ApplicationServer;

/// Where clients download PADs from in the uncontended sessions of
/// Figures 10/11 (the contended Figure 9(b) capacity experiment uses the
/// full CDN deployment in `fractal-cdn`). Wires are [`Bytes`]: every
/// client's `PAD_DOWNLOAD_REP` shares the one artifact buffer.
///
/// Epoch-versioned like the server's content store: `insert`/`clear`
/// take `&self` and publish a successor snapshot, so a PAD rollout (or
/// rollback) lands atomically under live download traffic — a reader
/// pins one consistent repo generation per lookup.
#[derive(Default)]
pub struct PadRepo {
    wires: crate::epoch::Epoch<HashMap<PadId, Bytes>>,
}

impl PadRepo {
    /// An empty repo (generation 0).
    pub fn new() -> PadRepo {
        PadRepo::default()
    }

    /// Publishes (or replaces) one PAD artifact's wire form.
    pub fn insert(&self, pad_id: PadId, wire: impl Into<Bytes>) {
        let wire = wire.into();
        self.wires.publish_with(|m| {
            m.insert(pad_id, wire);
        });
    }

    /// The wire form served for `PAD_DOWNLOAD_REQ` — an O(1) refcount
    /// clone out of the pinned snapshot.
    pub fn get(&self, pad_id: PadId) -> Option<Bytes> {
        self.wires.pin().get(&pad_id).cloned()
    }

    /// Withdraws every artifact (the "repo offline" fault in the
    /// session tests).
    pub fn clear(&self) {
        self.wires.publish_with(HashMap::clear);
    }

    /// Number of artifacts currently published.
    pub fn len(&self) -> usize {
        self.wires.pin().len()
    }

    /// Whether no artifacts are published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every published wire, ordered by PAD id (deterministic — the repo
    /// index is a hash map, its iteration order is not).
    pub fn wires(&self) -> Vec<Bytes> {
        let pinned = self.wires.pin();
        let mut entries: Vec<(&PadId, &Bytes)> = pinned.iter().collect();
        entries.sort_by_key(|(id, _)| **id);
        entries.into_iter().map(|(_, w)| w.clone()).collect()
    }

    /// The repo's snapshot generation (+1 per insert/clear).
    pub fn generation(&self) -> u64 {
        self.wires.generation()
    }
}

impl core::fmt::Debug for PadRepo {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PadRepo")
            .field("pads", &self.len())
            .field("generation", &self.generation())
            .finish()
    }
}

/// Per-session measurements, decomposed the way the paper plots them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SessionReport {
    /// The negotiated protocol (first PAD of the path).
    pub protocol: ProtocolId,
    /// INIT_REQ → PAD_META_REP (zero on a protocol-cache hit).
    pub negotiation: SimDuration,
    /// Whether the client's protocol cache short-circuited negotiation.
    pub negotiation_cached: bool,
    /// PAD download + verify + deploy (zero when already deployed).
    pub pad_retrieval: SimDuration,
    /// Server-side computing overhead (Figure 10's dark bars).
    pub server_compute: SimDuration,
    /// Client-side computing overhead (Figure 10's light bars).
    pub client_compute: SimDuration,
    /// Wire time for the application exchange (requests, upstream
    /// protocol messages, encoded payload).
    pub transmission: SimDuration,
    /// Bytes on the wire for the application exchange (Figure 11(a)).
    pub traffic: Traffic,
}

impl SessionReport {
    /// The paper's "total time" (Figure 11(b)/(c)): everything after
    /// negotiation, i.e. PAD retrieval + compute + transmission.
    pub fn total(&self) -> SimDuration {
        self.pad_retrieval + self.server_compute + self.client_compute + self.transmission
    }

    /// Total including negotiation (the client-perceived session time).
    pub fn total_with_negotiation(&self) -> SimDuration {
        self.negotiation + self.total()
    }
}

/// Runs one full client session for `content_id` at version
/// `want_version`, negotiating (or reusing) the protocol, downloading and
/// deploying PADs as needed, and transferring + decoding the content.
#[allow(clippy::too_many_arguments)] // one parameter per party in Figure 4
pub fn run_session(
    client: &mut FractalClient,
    proxy: &AdaptationProxy,
    server: &ApplicationServer,
    pad_repo: &PadRepo,
    link: &Link,
    app_id: AppId,
    content_id: u32,
    want_version: u32,
) -> Result<SessionReport, FractalError> {
    // --- Negotiation (Figure 4, top half) -----------------------------
    let (pads, negotiation, cached) = negotiate(client, proxy, link, app_id)?;
    let protocol = pads.first().map(|p| p.protocol).ok_or(FractalError::NoFeasiblePath)?;

    // --- PAD download + deploy ----------------------------------------
    let mut pad_retrieval = SimDuration::ZERO;
    for pad in &pads {
        if client.is_deployed(pad.id) {
            continue;
        }
        let wire = pad_repo.get(pad.id).ok_or(FractalError::PadUnavailable(pad.id))?;
        let req = InpMessage::PadDownloadReq { pad_id: pad.id };
        let rep = InpMessage::PadDownloadRep { pad_id: pad.id, bytes: wire.clone() };
        pad_retrieval += link.transfer_time(req.wire_len() as u64);
        pad_retrieval += link.transfer_time(rep.wire_len() as u64);
        client.deploy_pad(pad, &wire)?;
        // Verification + instantiation cost, linear-model scaled.
        pad_retrieval += SimDuration::millis(1).scale(STD_CPU_MHZ / client.env.dev.cpu_mhz as f64);
    }

    // --- Application exchange (APP_REQ … session) ----------------------
    let have = client.cached_content(content_id).map(|c| c.version);

    let pad_id = pads[0].id;
    // Upstream protocol message (Bitmap digests / fixed-block signatures),
    // built by the deployed mobile code.
    let upstream_msg = client.upstream_message(pad_id, protocol, content_id)?;

    let app_req = InpMessage::AppReq {
        app_id,
        protocols: pads.iter().map(|p| p.protocol).collect(),
        payload: content_id.to_le_bytes().to_vec(),
    };
    let mut upstream_bytes = app_req.wire_len() as u64;
    let mut transmission = link.transfer_time(upstream_bytes);
    if let Some(msg) = &upstream_msg {
        upstream_bytes += msg.len() as u64;
        transmission += link.transfer_time(msg.len() as u64);
    }

    // Server encodes (really runs the codec).
    let response = server.respond(content_id, have, want_version, protocol)?;
    let payload_len = response.payload.len() as u64;
    transmission += link.transfer_time(payload_len);

    // Client decodes through the sandboxed FVM module.
    let decoded = client.decode_content(pad_id, content_id, &response.payload)?;
    let expected = server.content(content_id, want_version).expect("published version");
    assert_eq!(decoded, expected, "mobile-code decode must reproduce the content");
    client.store_content(content_id, want_version, decoded);

    // --- Compute charging (Equation 3 terms with measured traffic) -----
    let model = proxy.model();
    let content_mb = expected.len() as f64 / 1_000_000.0;
    let over = &pads[0].overhead;
    let alpha = model.ratios.cpu.get(pad_id, client.env.dev.cpu);
    let beta = model.ratios.os.get(pad_id, client.env.dev.os);
    let server_compute = if response.computed_on_request {
        SimDuration::from_secs_f64(
            beta * over.server_ms_per_mb * content_mb * (STD_CPU_MHZ / model.server_cpu_mhz)
                / 1000.0,
        )
    } else {
        // Proactive store lookup.
        SimDuration::micros(50)
    };
    let client_compute = SimDuration::from_secs_f64(
        alpha
            * beta
            * over.client_ms_per_mb
            * content_mb
            * (STD_CPU_MHZ / client.env.dev.cpu_mhz as f64)
            / 1000.0,
    );

    Ok(SessionReport {
        protocol,
        negotiation,
        negotiation_cached: cached,
        pad_retrieval,
        server_compute,
        client_compute,
        transmission,
        traffic: Traffic { upstream: upstream_bytes, downstream: payload_len },
    })
}

/// The negotiation half: protocol-cache check, else the four-leg INP
/// exchange with the adaptation proxy.
fn negotiate(
    client: &mut FractalClient,
    proxy: &AdaptationProxy,
    link: &Link,
    app_id: AppId,
) -> Result<(Vec<PadMeta>, SimDuration, bool), FractalError> {
    if let Some(pads) = client.cached_protocols(app_id) {
        return Ok((pads, SimDuration::ZERO, true));
    }

    let env = client.probe();
    let was_cached_at_proxy = proxy.cached(app_id, &env);
    let pads = proxy.negotiate(app_id, env)?;

    // Build the real messages to account the real wire bytes.
    let init_req = InpMessage::InitReq { app_id, payload: b"app-request".to_vec() };
    let init_rep = InpMessage::InitRep;
    let meta_req = InpMessage::CliMetaReq;
    let meta_rep = InpMessage::CliMetaRep { dev: env.dev, ntwk: env.ntwk };
    let pads_rep = InpMessage::PadMetaRep { pads: pads.clone() };
    // Round-trip sanity: the proxy must be able to parse what we send.
    debug_assert_eq!(InpMessage::from_bytes(&meta_rep.to_bytes()).as_ref(), Ok(&meta_rep));

    let mut t = SimDuration::ZERO;
    t += link.transfer_time(init_req.wire_len() as u64);
    t += link.transfer_time((init_rep.wire_len() + meta_req.wire_len()) as u64);
    t += link.transfer_time(meta_rep.wire_len() as u64);
    t += proxy.service_time(app_id, was_cached_at_proxy);
    t += link.transfer_time(pads_rep.wire_len() as u64);

    client.remember_protocols(app_id, &pads);
    Ok((pads, t, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::ClientClass;
    use crate::server::AdaptiveContentMode;
    use crate::testbed::Testbed;

    fn content(seed: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i / 7) as u8).wrapping_mul(seed).wrapping_add(seed)).collect()
    }

    #[test]
    fn full_session_cold_then_warm() {
        let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
        let v0 = content(3, 40_000);
        let mut v1 = v0.clone();
        v1[100] ^= 0xFF;
        tb.server.publish(7, v0);
        tb.server.publish(7, v1);

        let mut client = tb.client(ClientClass::PdaBluetooth);
        let link = ClientClass::PdaBluetooth.link();

        let cold =
            run_session(&mut client, &tb.proxy, &tb.server, &tb.pad_repo, &link, tb.app_id, 7, 0)
                .unwrap();
        assert!(!cold.negotiation_cached);
        assert!(cold.negotiation > SimDuration::ZERO);
        assert!(cold.pad_retrieval > SimDuration::ZERO);
        assert!(cold.total() > SimDuration::ZERO);

        let warm =
            run_session(&mut client, &tb.proxy, &tb.server, &tb.pad_repo, &link, tb.app_id, 7, 1)
                .unwrap();
        assert!(warm.negotiation_cached, "protocol cache should hit");
        assert_eq!(warm.negotiation, SimDuration::ZERO);
        assert_eq!(warm.pad_retrieval, SimDuration::ZERO, "PAD already deployed");
        // Warm differencing transfer moves far fewer bytes than cold.
        assert!(warm.traffic.downstream < cold.traffic.downstream / 2);
    }

    #[test]
    fn session_decodes_through_vm_for_every_class() {
        for class in ClientClass::ALL {
            let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
            tb.server.publish(7, content(5, 20_000));
            let mut client = tb.client(class);
            let link = class.link();
            let report = run_session(
                &mut client,
                &tb.proxy,
                &tb.server,
                &tb.pad_repo,
                &link,
                tb.app_id,
                7,
                0,
            )
            .unwrap();
            assert!(report.traffic.downstream > 0, "{class}");
            assert_eq!(client.cached_content(7).unwrap().version, 0);
        }
    }

    #[test]
    fn proactive_mode_charges_no_server_compute() {
        let mut tb = Testbed::case_study(AdaptiveContentMode::Proactive);
        tb.proxy.set_mode(crate::overhead::ServerComputeMode::Exclude);
        tb.server.publish(7, content(6, 20_000));
        let mut client = tb.client(ClientClass::PdaBluetooth);
        let link = ClientClass::PdaBluetooth.link();
        let report =
            run_session(&mut client, &tb.proxy, &tb.server, &tb.pad_repo, &link, tb.app_id, 7, 0)
                .unwrap();
        assert!(report.server_compute < SimDuration::millis(1));
    }

    #[test]
    fn missing_pad_in_repo_fails_cleanly() {
        let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
        tb.server.publish(7, content(9, 5_000));
        tb.pad_repo.clear();
        let mut client = tb.client(ClientClass::DesktopLan);
        let link = ClientClass::DesktopLan.link();
        let err =
            run_session(&mut client, &tb.proxy, &tb.server, &tb.pad_repo, &link, tb.app_id, 7, 0)
                .unwrap_err();
        assert!(matches!(err, FractalError::PadUnavailable(_)));
    }
}
