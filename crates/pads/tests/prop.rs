//! Differential property tests: the FVM mobile-code decoders against the
//! native reference codecs, on arbitrary inputs.

use fractal_crypto::sign::SignerRegistry;
use fractal_pads::artifact::{build_pad, open_unchecked};
use fractal_pads::runtime::{PadError, PadRuntime};
use fractal_protocols::bitmap::Bitmap;
use fractal_protocols::direct::Direct;
use fractal_protocols::fixedblock::FixedBlock;
use fractal_protocols::gzip::Gzip;
use fractal_protocols::varyblock::{ChunkParams, VaryBlock};
use fractal_protocols::{DiffCodec, ProtocolId};
use fractal_vm::SandboxPolicy;
use proptest::prelude::*;

fn runtime(p: ProtocolId) -> PadRuntime {
    let signer = SignerRegistry::new().provision("prop");
    PadRuntime::new(open_unchecked(&build_pad(p, &signer)), SandboxPolicy::for_pads()).unwrap()
}

/// Native codec with parameters small enough for proptest-sized inputs.
/// NOTE: bitmap/fixed decoders read parameters from the payload, and the
/// vary decoder is parameter-free, so the VM side needs no configuration.
fn native(p: ProtocolId) -> Box<dyn DiffCodec> {
    match p {
        ProtocolId::Direct => Box::new(Direct),
        ProtocolId::Gzip => Box::new(Gzip),
        ProtocolId::Bitmap => Box::new(Bitmap::with_block_size(64)),
        ProtocolId::VaryBlock => {
            Box::new(VaryBlock::with_params(ChunkParams { min: 32, max: 512, mask: 0x3F }))
        }
        ProtocolId::FixedBlock => Box::new(FixedBlock::with_block_size(64)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every protocol: VM decode of a genuine payload equals the new
    /// version, on arbitrary old/new byte vectors.
    #[test]
    fn vm_decoders_match_native_encoders(
        old in proptest::collection::vec(any::<u8>(), 0..2048),
        mut new in proptest::collection::vec(any::<u8>(), 0..2048),
        reuse_prefix in any::<bool>()
    ) {
        if reuse_prefix {
            // Make versions related half the time so diff paths trigger.
            let keep = old.len().min(new.len()) / 2;
            new[..keep].copy_from_slice(&old[..keep]);
        }
        for p in ProtocolId::ALL {
            let payload = native(p).encode(&old, &new);
            let mut rt = runtime(p);
            let decoded = rt.decode(&old, &payload);
            prop_assert_eq!(decoded.as_deref().ok(), Some(new.as_slice()), "{}", p);
        }
    }

    /// VM decoders are total on garbage payloads: a clean PadError (status
    /// or trap), never a panic, never fabricated success matching nothing.
    #[test]
    fn vm_decoders_total_on_garbage(
        old in proptest::collection::vec(any::<u8>(), 0..512),
        payload in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        for p in ProtocolId::ALL {
            let mut rt = runtime(p);
            match rt.decode(&old, &payload) {
                Ok(_) | Err(PadError::Status(_)) | Err(PadError::Trap(_)) => {}
                Err(other) => prop_assert!(
                    matches!(other, PadError::InputsTooLarge { .. }),
                    "unexpected error {other:?}"
                ),
            }
        }
    }

    /// Where the native decoder errors on a truncated payload, the VM
    /// decoder must error too (no silent acceptance).
    #[test]
    fn vm_rejects_what_native_rejects(
        old in proptest::collection::vec(any::<u8>(), 0..1024),
        new in proptest::collection::vec(any::<u8>(), 1..1024),
        cut_ppm in 0u32..999_999
    ) {
        for p in ProtocolId::ALL {
            let codec = native(p);
            let payload = codec.encode(&old, &new);
            if payload.len() < 2 { continue; }
            let cut = 1 + (cut_ppm as usize % (payload.len() - 1));
            let truncated = &payload[..cut];
            if codec.decode(&old, truncated).is_err() {
                let mut rt = runtime(p);
                prop_assert!(rt.decode(&old, truncated).is_err(),
                             "{} accepted a truncated payload", p);
            }
        }
    }

    /// The DEFLATE extension PAD (Huffman + LZ77 in mobile code) matches
    /// the native Deflate codec on arbitrary content.
    #[test]
    fn deflate_pad_matches_native(content in proptest::collection::vec(any::<u8>(), 0..4096)) {
        use fractal_protocols::deflate::Deflate;
        let payload = Deflate.encode(&[], &content);
        let signer = SignerRegistry::new().provision("prop-deflate");
        let artifact = fractal_pads::artifact::build_deflate_pad(&signer);
        let mut rt = PadRuntime::new(open_unchecked(&artifact), SandboxPolicy::for_pads()).unwrap();
        let decoded = rt.decode(&[], &payload);
        prop_assert_eq!(decoded.as_deref().ok(), Some(content.as_slice()));
    }

    /// The DEFLATE PAD is total on garbage payloads.
    #[test]
    fn deflate_pad_total_on_garbage(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let signer = SignerRegistry::new().provision("prop-deflate");
        let artifact = fractal_pads::artifact::build_deflate_pad(&signer);
        let mut rt = PadRuntime::new(open_unchecked(&artifact), SandboxPolicy::for_pads()).unwrap();
        let _ = rt.decode(&[], &payload);
    }

    /// Upstream builders agree with the native message for arbitrary old
    /// versions and block sizes.
    #[test]
    fn upstream_builders_match(
        old in proptest::collection::vec(any::<u8>(), 0..2048),
        bs in 16u32..256
    ) {
        let mut rt = runtime(ProtocolId::Bitmap);
        let vm = rt.upstream("digests", &old, bs).unwrap();
        let native = Bitmap::with_block_size(bs as usize).upstream_message(&old);
        prop_assert_eq!(vm, native);

        let mut rt = runtime(ProtocolId::FixedBlock);
        let vm = rt.upstream("signatures", &old, bs).unwrap();
        let native = FixedBlock::with_block_size(bs as usize).upstream_message(&old);
        prop_assert_eq!(vm, native);
    }
}
