//! Building signed PAD artifacts from their FVM assembly sources.

use fractal_crypto::sign::Signer;
use fractal_crypto::Digest;
use fractal_protocols::ProtocolId;
use fractal_vm::{
    analyze_module, assemble, verify::verify_module, AnalysisClaims, HostId, Module, SandboxPolicy,
    SignedModule,
};

/// FVM assembly source for the direct-sending PAD.
pub const DIRECT_FASM: &str = include_str!("../fasm/direct.fasm");
/// FVM assembly source for the Gzip (LZ77) PAD.
pub const GZIP_FASM: &str = include_str!("../fasm/gzip.fasm");
/// FVM assembly source for the Bitmap PAD.
pub const BITMAP_FASM: &str = include_str!("../fasm/bitmap.fasm");
/// FVM assembly source for the recipe decoder (vary-sized blocking).
pub const RECIPE_FASM: &str = include_str!("../fasm/recipe.fasm");
/// FVM assembly source for the rsync signature builder (appended to the
/// recipe decoder for the fixed-sized blocking PAD).
pub const SIGNATURES_FASM: &str = include_str!("../fasm/signatures.fasm");
/// FVM assembly source for the DEFLATE-class (Huffman + LZ77) extension
/// PAD — the entropy-stage upgrade of the Gzip PAD.
pub const DEFLATE_FASM: &str = include_str!("../fasm/deflate.fasm");

/// A built, signed protocol adaptor ready for CDN deployment.
#[derive(Clone, Debug)]
pub struct PadArtifact {
    /// Which protocol the PAD implements.
    pub protocol: ProtocolId,
    /// The signed mobile-code module (what edge servers store and clients
    /// download).
    pub signed: SignedModule,
    /// Entry points the module exports.
    pub entries: Vec<String>,
    /// Static lower bound on the fuel any entry needs to complete, proven
    /// by the abstract interpreter at build time. A client whose sandbox
    /// budget is below this can reject the PAD without downloading it.
    pub min_fuel: u64,
    /// Host intrinsics reachable from any entry — the capabilities the PAD
    /// actually needs, as opposed to the ones it could name. Computed at
    /// build time; not part of the wire format.
    pub required_hosts: Vec<HostId>,
    /// The analyzer's full claims ledger (fuel lower bounds, capability
    /// mask, per-site proven facts and operand intervals). Carried so a
    /// client can run the claims auditor against this exact build; not
    /// part of the wire format.
    pub claims: AnalysisClaims,
}

impl PadArtifact {
    /// SHA-1 digest of the module bytes (advertised in `PADMeta`).
    pub fn digest(&self) -> Digest {
        self.signed.digest()
    }

    /// Wire size of the artifact in bytes (module + signature) — the
    /// `PAD size` field of `PADMeta`.
    pub fn wire_len(&self) -> usize {
        self.signed.wire_len()
    }
}

/// Returns the assembly source for `protocol`.
pub fn source_for(protocol: ProtocolId) -> String {
    match protocol {
        ProtocolId::Direct => DIRECT_FASM.to_string(),
        ProtocolId::Gzip => GZIP_FASM.to_string(),
        ProtocolId::Bitmap => BITMAP_FASM.to_string(),
        ProtocolId::VaryBlock => RECIPE_FASM.to_string(),
        // Fixed-block shares the recipe decoder and adds the upstream
        // signature builder.
        ProtocolId::FixedBlock => format!("{RECIPE_FASM}\n{SIGNATURES_FASM}"),
    }
}

/// Assembles, verifies, and signs the PAD for `protocol`.
///
/// Panics on assembly or verification failure: the sources are part of this
/// crate, so failure is a build bug, not an input condition.
pub fn build_pad(protocol: ProtocolId, signer: &Signer) -> PadArtifact {
    let source = source_for(protocol);
    let module =
        assemble(&source).unwrap_or_else(|e| panic!("PAD {protocol} failed to assemble: {e}"));
    verify_module(&module).unwrap_or_else(|e| panic!("PAD {protocol} failed verification: {e}"));
    let analysis = analyze_module(&module, &SandboxPolicy::for_pads())
        .unwrap_or_else(|e| panic!("PAD {protocol} failed analysis: {e}"));
    let entries = module.functions.iter().map(|f| f.name.clone()).collect();
    PadArtifact {
        protocol,
        signed: SignedModule::sign(&module, signer),
        entries,
        min_fuel: analysis.module_min_fuel,
        required_hosts: analysis.all_hosts(),
        claims: analysis.claims,
    }
}

/// Builds the DEFLATE-class extension PAD (Huffman + LZ77 decoder in
/// mobile code), the upgrade of the Gzip PAD measured by the
/// entropy-stage ablation. Reports itself under the Gzip protocol id.
pub fn build_deflate_pad(signer: &Signer) -> PadArtifact {
    let module =
        assemble(DEFLATE_FASM).unwrap_or_else(|e| panic!("deflate PAD failed to assemble: {e}"));
    verify_module(&module).unwrap_or_else(|e| panic!("deflate PAD failed verification: {e}"));
    let analysis = analyze_module(&module, &SandboxPolicy::for_pads())
        .unwrap_or_else(|e| panic!("deflate PAD failed analysis: {e}"));
    let entries = module.functions.iter().map(|f| f.name.clone()).collect();
    PadArtifact {
        protocol: ProtocolId::Gzip,
        signed: SignedModule::sign(&module, signer),
        entries,
        min_fuel: analysis.module_min_fuel,
        required_hosts: analysis.all_hosts(),
        claims: analysis.claims,
    }
}

/// Decodes the module out of an artifact without any trust checks (used by
/// the server side, which built the artifact itself).
pub fn open_unchecked(artifact: &PadArtifact) -> Module {
    Module::from_bytes(&artifact.signed.bytes).expect("artifact holds a valid module")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_crypto::sign::SignerRegistry;

    fn signer() -> Signer {
        SignerRegistry::new().provision("pad-test")
    }

    #[test]
    fn every_pad_assembles_verifies_and_signs() {
        let s = signer();
        for p in ProtocolId::ALL {
            let a = build_pad(p, &s);
            assert!(a.wire_len() > 24, "{p} artifact too small");
            assert!(a.entries.contains(&"decode".to_string()), "{p} missing decode");
        }
    }

    #[test]
    fn bitmap_exports_digests_entry() {
        let a = build_pad(ProtocolId::Bitmap, &signer());
        assert!(a.entries.contains(&"digests".to_string()));
    }

    #[test]
    fn fixedblock_exports_signatures_entry() {
        let a = build_pad(ProtocolId::FixedBlock, &signer());
        assert!(a.entries.contains(&"signatures".to_string()));
        assert!(a.entries.contains(&"decode".to_string()));
    }

    #[test]
    fn every_pad_carries_finite_static_bounds() {
        let s = signer();
        for p in ProtocolId::ALL {
            let a = build_pad(p, &s);
            assert!(a.min_fuel > 0, "{p} min_fuel must be positive");
            assert!(a.min_fuel < u64::MAX, "{p} must have a completing path");
            assert!(
                a.min_fuel <= SandboxPolicy::for_pads().max_fuel,
                "{p} could never finish under the default budget"
            );
        }
    }

    #[test]
    fn required_hosts_reflect_reachable_intrinsics() {
        let s = signer();
        // The direct PAD just memcopies — no host calls at all.
        assert!(build_pad(ProtocolId::Direct, &s).required_hosts.is_empty());
        // The bitmap PAD hashes blocks with the sha1 intrinsic.
        assert!(build_pad(ProtocolId::Bitmap, &s).required_hosts.contains(&HostId::Sha1));
    }

    #[test]
    fn digests_are_stable_and_distinct() {
        let s = signer();
        let a1 = build_pad(ProtocolId::Gzip, &s);
        let a2 = build_pad(ProtocolId::Gzip, &s);
        assert_eq!(a1.digest(), a2.digest(), "same source same digest");
        let b = build_pad(ProtocolId::Bitmap, &s);
        assert_ne!(a1.digest(), b.digest());
    }

    #[test]
    fn vary_and_fixed_share_decoder_but_differ_as_modules() {
        let s = signer();
        let vary = build_pad(ProtocolId::VaryBlock, &s);
        let fixed = build_pad(ProtocolId::FixedBlock, &s);
        assert_ne!(vary.digest(), fixed.digest());
        let vm = open_unchecked(&vary);
        let fm = open_unchecked(&fixed);
        // Same decode bytecode, extra signatures function in fixed.
        let vd = vm.functions.iter().find(|f| f.name == "decode").unwrap();
        let fd = fm.functions.iter().find(|f| f.name == "decode").unwrap();
        assert_eq!(vd.code, fd.code);
        assert_eq!(vm.functions.len() + 1, fm.functions.len());
    }
}

#[cfg(test)]
mod deflate_tests {
    use super::*;
    use crate::runtime::PadRuntime;
    use fractal_crypto::sign::SignerRegistry;
    use fractal_protocols::deflate::Deflate;
    use fractal_protocols::DiffCodec;
    use fractal_vm::SandboxPolicy;

    fn runtime() -> PadRuntime {
        let signer = SignerRegistry::new().provision("deflate-test");
        let artifact = build_deflate_pad(&signer);
        PadRuntime::new(open_unchecked(&artifact), SandboxPolicy::for_pads()).unwrap()
    }

    fn texty(len: usize) -> Vec<u8> {
        b"adaptation proxies negotiate protocol adaptors for heterogeneous clients. "
            .iter()
            .copied()
            .cycle()
            .take(len)
            .collect()
    }

    #[test]
    fn deflate_pad_assembles_and_verifies() {
        let signer = SignerRegistry::new().provision("deflate-test");
        let artifact = build_deflate_pad(&signer);
        assert!(artifact.entries.contains(&"decode".to_string()));
        assert_eq!(artifact.protocol, ProtocolId::Gzip);
    }

    #[test]
    fn vm_decodes_huffman_lz77_payloads() {
        let mut rt = runtime();
        for content in [texty(50_000), texty(1), Vec::new(), texty(4096)] {
            let payload = Deflate.encode(&[], &content);
            assert_eq!(rt.decode(&[], &payload).unwrap(), content, "len {}", content.len());
        }
    }

    #[test]
    fn vm_decodes_binary_content() {
        let mut rt = runtime();
        let content: Vec<u8> =
            (0..30_000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        let payload = Deflate.encode(&[], &content);
        assert_eq!(rt.decode(&[], &payload).unwrap(), content);
    }

    #[test]
    fn vm_rejects_truncated_deflate_payloads() {
        let mut rt = runtime();
        let payload = Deflate.encode(&[], &texty(10_000));
        for cut in [0usize, 4, 100, payload.len() / 2, payload.len() - 1] {
            assert!(rt.decode(&[], &payload[..cut]).is_err(), "cut {cut}");
        }
    }
}
