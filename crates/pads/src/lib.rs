//! # fractal-pads
//!
//! The PAD factory: protocol adaptors packaged as **signed FVM mobile-code
//! modules**, exactly as the Fractal paper deploys them (§3.1: "PAD, which
//! is a protocol adaptor implemented in a mobile code module").
//!
//! Each of the case-study protocols has its client-side logic written in
//! FVM assembly (the `fasm/` directory), compiled by the
//! [`assembler`](fractal_vm::asm), verified, and signed by the application
//! server's signer:
//!
//! | PAD | source | entries |
//! |---|---|---|
//! | Direct sending | `fasm/direct.fasm` | `decode` |
//! | Gzip | `fasm/gzip.fasm` | `decode` (LZ77 token-stream decompressor) |
//! | Bitmap | `fasm/bitmap.fasm` | `decode`, `digests` (upstream message) |
//! | Vary-sized blocking | `fasm/recipe.fasm` | `decode` (recipe interpreter) |
//! | Fixed-sized blocking | `fasm/recipe.fasm` + `fasm/signatures.fasm` | `decode`, `signatures` |
//!
//! [`runtime::PadRuntime`] is what a Fractal *client* runs after verifying
//! and deploying a downloaded PAD: it stages the old version and the
//! server's payload into the sandboxed machine's linear memory, invokes the
//! module's `decode` entry, and extracts the rebuilt content. Property
//! tests differential-check every VM decoder against the native reference
//! codecs in `fractal-protocols`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod catalog;
pub mod runtime;

pub use artifact::{build_pad, PadArtifact};
pub use catalog::{Catalog, Table1Row};
pub use runtime::{PadError, PadRuntime};
