//! The PAD catalog: what an application server registers with its
//! adaptation proxy, and the source of the paper's Table 1.

use fractal_crypto::sign::Signer;
use fractal_protocols::ProtocolId;

use crate::artifact::{build_pad, PadArtifact};

/// All PADs an application server has built and signed.
#[derive(Clone, Debug)]
pub struct Catalog {
    pads: Vec<PadArtifact>,
}

impl Catalog {
    /// Builds and signs the paper's four case-study PADs (Table 1).
    pub fn paper_four(signer: &Signer) -> Catalog {
        Catalog { pads: ProtocolId::PAPER_FOUR.iter().map(|&p| build_pad(p, signer)).collect() }
    }

    /// Builds all five PADs (the four plus the rsync-style extension).
    pub fn all(signer: &Signer) -> Catalog {
        Catalog { pads: ProtocolId::ALL.iter().map(|&p| build_pad(p, signer)).collect() }
    }

    /// Iterates the artifacts.
    pub fn artifacts(&self) -> impl Iterator<Item = &PadArtifact> {
        self.pads.iter()
    }

    /// Looks up the artifact for one protocol.
    pub fn get(&self, protocol: ProtocolId) -> Option<&PadArtifact> {
        self.pads.iter().find(|a| a.protocol == protocol)
    }

    /// Number of PADs in the catalog.
    pub fn len(&self) -> usize {
        self.pads.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.pads.is_empty()
    }
}

/// One row of the paper's Table 1 ("The functions and implementations of
/// PADs used in the experiments").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table1Row {
    /// PAD name.
    pub name: &'static str,
    /// What the protocol does.
    pub function: &'static str,
    /// How it is implemented in this reproduction.
    pub implementation: &'static str,
}

/// Produces Table 1 for this reproduction (the paper's "Java class object"
/// column becomes "signed FVM mobile-code module").
pub fn table1() -> Vec<Table1Row> {
    vec![
        Table1Row { name: "Direct", function: "null", implementation: "null (signed FVM module)" },
        Table1Row {
            name: "Gzip",
            function: "Compression (LZ77)",
            implementation: "signed FVM mobile-code module",
        },
        Table1Row {
            name: "Vary-sized blocking",
            function: "Differencing files using Rabin fingerprint chunks",
            implementation: "signed FVM mobile-code module",
        },
        Table1Row {
            name: "Bitmap",
            function: "Differencing files block by block",
            implementation: "signed FVM mobile-code module",
        },
        Table1Row {
            name: "Fixed-sized blocking (ext.)",
            function: "Differencing files with rolling checksums (rsync)",
            implementation: "signed FVM mobile-code module",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_crypto::sign::SignerRegistry;

    #[test]
    fn paper_four_catalog() {
        let signer = SignerRegistry::new().provision("catalog");
        let c = Catalog::paper_four(&signer);
        assert_eq!(c.len(), 4);
        for p in ProtocolId::PAPER_FOUR {
            assert!(c.get(p).is_some(), "missing {p}");
        }
        assert!(c.get(ProtocolId::FixedBlock).is_none());
    }

    #[test]
    fn full_catalog() {
        let signer = SignerRegistry::new().provision("catalog");
        let c = Catalog::all(&signer);
        assert_eq!(c.len(), 5);
        assert!(!c.is_empty());
    }

    #[test]
    fn artifacts_have_distinct_digests() {
        let signer = SignerRegistry::new().provision("catalog");
        let c = Catalog::all(&signer);
        let digests: std::collections::HashSet<_> = c.artifacts().map(|a| a.digest()).collect();
        assert_eq!(digests.len(), c.len());
    }

    #[test]
    fn table1_covers_all_protocols() {
        let rows = table1();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().any(|r| r.name == "Direct"));
        assert!(rows.iter().any(|r| r.name == "Bitmap"));
    }
}
