//! The client-side PAD runtime: executing a deployed protocol adaptor.
//!
//! After a Fractal client has downloaded a PAD, checked its digest against
//! `PADMeta`, and verified its code signature, it *deploys* the PAD by
//! instantiating the module in a sandboxed [`Machine`] and drives it
//! through this runtime:
//!
//! * [`PadRuntime::decode`] — stage `(old, payload)` in linear memory, call
//!   the module's `decode` entry, extract the rebuilt content;
//! * [`PadRuntime::upstream`] — call an upstream-message builder entry
//!   (`digests` for Bitmap, `signatures` for fixed-block) to produce the
//!   bytes the client sends the server before the transfer.
//!
//! ## Memory layout convention
//!
//! ```text
//! 0   .. 64          module scratch (sha1 output etc.)
//! 64  .. +old_len    the client's old version
//! ..  .. +pay_len    the server payload (8-byte aligned)
//! ..  .. end         output region (8-byte aligned; capacity = the rest)
//! ```

use fractal_vm::{Machine, Module, SandboxPolicy, Trap};

/// Scratch area reserved at the bottom of linear memory.
const SCRATCH: usize = 64;

fn align8(x: usize) -> usize {
    (x + 7) & !7
}

/// Errors surfaced by running a PAD.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PadError {
    /// The machine trapped (sandbox violation, fuel exhaustion, …).
    Trap(Trap),
    /// The module returned a negative status code
    /// (−1 truncated, −2 bad format, −3 old out of range, −4 capacity).
    Status(i64),
    /// Inputs do not fit the module's linear memory.
    InputsTooLarge {
        /// Bytes required.
        required: usize,
        /// Bytes available.
        available: usize,
    },
    /// The module reported an output length larger than its output region.
    BogusOutputLength(i64),
}

impl core::fmt::Display for PadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PadError::Trap(t) => write!(f, "PAD trapped: {t}"),
            PadError::Status(code) => write!(f, "PAD returned error status {code}"),
            PadError::InputsTooLarge { required, available } => {
                write!(f, "inputs need {required} bytes, module memory has {available}")
            }
            PadError::BogusOutputLength(n) => write!(f, "PAD claimed bogus output length {n}"),
        }
    }
}

impl std::error::Error for PadError {}

impl From<Trap> for PadError {
    fn from(t: Trap) -> Self {
        PadError::Trap(t)
    }
}

/// A deployed PAD: an instantiated sandboxed module plus the calling
/// conventions of the Fractal PAD ABI.
pub struct PadRuntime {
    machine: Machine,
}

impl core::fmt::Debug for PadRuntime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PadRuntime").field("machine", &self.machine).finish()
    }
}

impl PadRuntime {
    /// Instantiates a verified module under `policy`.
    ///
    /// Runs the abstract interpreter first; modules it proves safe execute
    /// on the interpreter's fast path (no per-op stack checks). Modules it
    /// cannot prove — e.g. recursion whose shared-stack bound exceeds the
    /// policy — still deploy, on the fully checked path.
    pub fn new(module: Module, policy: SandboxPolicy) -> Result<PadRuntime, PadError> {
        let machine = match module.clone().analyzed(&policy) {
            Ok(analyzed) => Machine::new_analyzed(analyzed, policy)?,
            Err(_) => Machine::new(module, policy)?,
        };
        Ok(PadRuntime { machine })
    }

    /// Instantiates on the fully checked interpreter path, skipping the
    /// analyzer — the path [`PadRuntime::new`] falls back to. Exposed so
    /// benchmarks and tests can compare the two paths directly.
    pub fn new_checked(module: Module, policy: SandboxPolicy) -> Result<PadRuntime, PadError> {
        Ok(PadRuntime { machine: Machine::new(module, policy)? })
    }

    /// Instantiates in claims-auditor mode: the checked interpreter runs
    /// and every claim the analyzer made (fuel lower bounds, capability
    /// set, per-site intervals and proven facts) is asserted against
    /// observed execution. Discrepancies accumulate in
    /// [`PadRuntime::audit_violations`] — each one is an analyzer
    /// soundness bug. Used by the differential trust harness.
    pub fn new_audited(module: Module, policy: SandboxPolicy) -> Result<PadRuntime, PadError> {
        let analyzed = module.analyzed(&policy).map_err(|_| PadError::Trap(Trap::Wedged))?;
        Ok(PadRuntime { machine: Machine::new_audited(analyzed, policy)? })
    }

    /// Claim violations the auditor has observed (empty unless built with
    /// [`PadRuntime::new_audited`]).
    pub fn audit_violations(&self) -> &[fractal_vm::AuditViolation] {
        self.machine.audit_violations()
    }

    /// How many analyzer claims the auditor has checked so far.
    pub fn claims_audited(&self) -> u64 {
        self.machine.claims_audited()
    }

    /// Whether this instance runs on the analyzed fast path.
    pub fn is_fast_path(&self) -> bool {
        self.machine.is_fast_path()
    }

    /// Total fuel the instance has consumed (a proxy for client-side
    /// compute in diagnostics; the simulation charges modeled time).
    pub fn fuel_used(&self) -> u64 {
        self.machine.fuel_used()
    }

    /// Runs the module's `decode` entry over `(old, payload)`.
    pub fn decode(&mut self, old: &[u8], payload: &[u8]) -> Result<Vec<u8>, PadError> {
        let old_base = SCRATCH;
        let pay_base = align8(old_base + old.len());
        let out_base = align8(pay_base + payload.len());
        let mem = self.machine.memory_len();
        if out_base >= mem {
            return Err(PadError::InputsTooLarge { required: out_base + 1, available: mem });
        }
        let out_cap = mem - out_base;

        self.machine.refuel();
        self.machine.write_memory(old_base, old)?;
        self.machine.write_memory(pay_base, payload)?;
        let ret = self.machine.call(
            "decode",
            &[
                old_base as i64,
                old.len() as i64,
                pay_base as i64,
                payload.len() as i64,
                out_base as i64,
                out_cap as i64,
            ],
        )?;
        if ret < 0 {
            return Err(PadError::Status(ret));
        }
        if ret as usize > out_cap {
            return Err(PadError::BogusOutputLength(ret));
        }
        Ok(self.machine.read_memory(out_base, ret as usize)?.to_vec())
    }

    /// Runs an upstream-message builder entry (`digests` / `signatures`)
    /// with the given block-size parameter.
    pub fn upstream(
        &mut self,
        entry: &str,
        old: &[u8],
        block_size: u32,
    ) -> Result<Vec<u8>, PadError> {
        let old_base = SCRATCH;
        let out_base = align8(old_base + old.len());
        let mem = self.machine.memory_len();
        if out_base >= mem {
            return Err(PadError::InputsTooLarge { required: out_base + 1, available: mem });
        }
        let out_cap = mem - out_base;

        self.machine.refuel();
        self.machine.write_memory(old_base, old)?;
        let ret = self.machine.call(
            entry,
            &[
                old_base as i64,
                old.len() as i64,
                block_size as i64,
                out_base as i64,
                out_cap as i64,
            ],
        )?;
        if ret < 0 {
            return Err(PadError::Status(ret));
        }
        if ret as usize > out_cap {
            return Err(PadError::BogusOutputLength(ret));
        }
        Ok(self.machine.read_memory(out_base, ret as usize)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{build_pad, open_unchecked};
    use fractal_crypto::sign::SignerRegistry;
    use fractal_protocols::bitmap::Bitmap;
    use fractal_protocols::direct::Direct;
    use fractal_protocols::fixedblock::FixedBlock;
    use fractal_protocols::gzip::Gzip;
    use fractal_protocols::varyblock::VaryBlock;
    use fractal_protocols::{DiffCodec, ProtocolId};

    fn runtime(p: ProtocolId) -> PadRuntime {
        let signer = SignerRegistry::new().provision("rt-test");
        let artifact = build_pad(p, &signer);
        PadRuntime::new(open_unchecked(&artifact), SandboxPolicy::for_pads()).unwrap()
    }

    fn data(seed: u64, len: usize) -> Vec<u8> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 32) as u8
            })
            .collect()
    }

    /// Text-like compressible data.
    fn texty(len: usize) -> Vec<u8> {
        b"adaptation proxy negotiates protocol adaptors for heterogeneous clients. "
            .iter()
            .copied()
            .cycle()
            .take(len)
            .collect()
    }

    #[test]
    fn direct_vm_matches_native() {
        let mut rt = runtime(ProtocolId::Direct);
        let new = data(1, 5000);
        let payload = Direct.encode(&[], &new);
        assert_eq!(rt.decode(&[], &payload).unwrap(), new);
    }

    #[test]
    fn gzip_vm_matches_native() {
        let mut rt = runtime(ProtocolId::Gzip);
        for content in [texty(40_000), data(2, 10_000), Vec::new(), texty(1)] {
            let payload = Gzip.encode(&[], &content);
            assert_eq!(rt.decode(&[], &payload).unwrap(), content, "len {}", content.len());
        }
    }

    #[test]
    fn bitmap_vm_matches_native() {
        let codec = Bitmap::with_block_size(512);
        let mut rt = runtime(ProtocolId::Bitmap);
        let old = data(3, 20_000);
        let mut new = old.clone();
        new[1000] ^= 0xFF;
        new[15_000] ^= 0x0F;
        let payload = codec.encode(&old, &new);
        assert_eq!(rt.decode(&old, &payload).unwrap(), new);
    }

    #[test]
    fn bitmap_vm_upstream_matches_native() {
        let codec = Bitmap::with_block_size(512);
        let mut rt = runtime(ProtocolId::Bitmap);
        for len in [0usize, 1, 511, 512, 513, 20_000] {
            let old = data(4, len);
            let vm_msg = rt.upstream("digests", &old, 512).unwrap();
            assert_eq!(vm_msg, codec.upstream_message(&old), "old len {len}");
        }
    }

    #[test]
    fn varyblock_vm_matches_native() {
        let codec = VaryBlock::default();
        let mut rt = runtime(ProtocolId::VaryBlock);
        let old = data(5, 60_000);
        let mut new = old.clone();
        for (i, b) in data(6, 50).into_iter().enumerate() {
            new.insert(10_000 + i, b);
        }
        let payload = codec.encode(&old, &new);
        assert_eq!(rt.decode(&old, &payload).unwrap(), new);
    }

    #[test]
    fn fixedblock_vm_matches_native() {
        let codec = FixedBlock::with_block_size(512);
        let mut rt = runtime(ProtocolId::FixedBlock);
        let old = data(7, 30_000);
        let mut new = old.clone();
        new.insert(5_000, 0xAA);
        let payload = codec.encode(&old, &new);
        assert_eq!(rt.decode(&old, &payload).unwrap(), new);
    }

    #[test]
    fn fixedblock_vm_signatures_match_native() {
        let codec = FixedBlock::with_block_size(512);
        let mut rt = runtime(ProtocolId::FixedBlock);
        for len in [0usize, 511, 512, 1024, 10_000, 10_100] {
            let old = data(8, len);
            let vm_msg = rt.upstream("signatures", &old, 512).unwrap();
            assert_eq!(vm_msg, codec.upstream_message(&old), "old len {len}");
        }
    }

    #[test]
    fn truncated_payload_yields_status() {
        let mut rt = runtime(ProtocolId::Gzip);
        let payload = Gzip.encode(&[], &texty(1000));
        let err = rt.decode(&[], &payload[..payload.len() / 2]).unwrap_err();
        assert!(matches!(err, PadError::Status(-1) | PadError::Status(-2)), "{err:?}");
    }

    #[test]
    fn garbage_payload_yields_status_not_trap() {
        let mut rt = runtime(ProtocolId::VaryBlock);
        // A recipe whose COPY references old bytes that don't exist.
        let payload = VaryBlock::default().encode(&data(9, 9000), &data(9, 9000));
        let err = rt.decode(&[], &payload).unwrap_err(); // empty old
        assert_eq!(err, PadError::Status(-3));
    }

    #[test]
    fn oversized_inputs_rejected_cleanly() {
        let mut rt = runtime(ProtocolId::Direct);
        // Module memory is 64 pages = 4 MiB; 5 MiB input can't fit.
        let huge = vec![0u8; 5 * 1024 * 1024];
        let err = rt.decode(&[], &huge).unwrap_err();
        assert!(matches!(err, PadError::InputsTooLarge { .. }));
    }

    #[test]
    fn fuel_is_consumed_and_reported() {
        let mut rt = runtime(ProtocolId::Gzip);
        let payload = Gzip.encode(&[], &texty(5000));
        rt.decode(&[], &payload).unwrap();
        assert!(rt.fuel_used() > 100, "fuel used: {}", rt.fuel_used());
    }

    #[test]
    fn shipped_pads_deploy_on_the_fast_path() {
        for p in ProtocolId::ALL {
            assert!(runtime(p).is_fast_path(), "{p} fell back to the checked path");
        }
    }

    #[test]
    fn repeated_decodes_on_one_instance() {
        let mut rt = runtime(ProtocolId::Gzip);
        for i in 0..5 {
            let content = texty(1000 + i * 997);
            let payload = Gzip.encode(&[], &content);
            assert_eq!(rt.decode(&[], &payload).unwrap(), content);
        }
    }
}
