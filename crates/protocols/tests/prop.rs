//! Property-based tests for the protocol codecs: the round-trip law on
//! arbitrary version pairs, and decoder robustness on arbitrary payloads.

use fractal_protocols::bitmap::Bitmap;
use fractal_protocols::direct::Direct;
use fractal_protocols::fixedblock::FixedBlock;
use fractal_protocols::gzip::Gzip;
use fractal_protocols::varyblock::{ChunkParams, VaryBlock};
use fractal_protocols::{lz77, recipe, DiffCodec};
use proptest::prelude::*;

fn codecs() -> Vec<Box<dyn DiffCodec>> {
    vec![
        Box::new(Direct),
        Box::new(Gzip),
        Box::new(Bitmap::with_block_size(64)),
        Box::new(VaryBlock::with_params(ChunkParams { min: 32, max: 512, mask: 0x3F })),
        Box::new(FixedBlock::with_block_size(64)),
    ]
}

/// An "edit script" applied to old → new, covering the interesting diff
/// shapes: in-place overwrite, insertion, deletion, append, truncate.
#[derive(Debug, Clone)]
enum Edit {
    Overwrite { at: usize, bytes: Vec<u8> },
    Insert { at: usize, bytes: Vec<u8> },
    Delete { at: usize, len: usize },
    Append(Vec<u8>),
    Truncate(usize),
}

fn arb_edit() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (any::<usize>(), proptest::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(at, bytes)| Edit::Overwrite { at, bytes }),
        (any::<usize>(), proptest::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(at, bytes)| Edit::Insert { at, bytes }),
        (any::<usize>(), 1usize..64).prop_map(|(at, len)| Edit::Delete { at, len }),
        proptest::collection::vec(any::<u8>(), 1..64).prop_map(Edit::Append),
        any::<usize>().prop_map(Edit::Truncate),
    ]
}

fn apply_edits(old: &[u8], edits: &[Edit]) -> Vec<u8> {
    let mut v = old.to_vec();
    for e in edits {
        match e {
            Edit::Overwrite { at, bytes } => {
                if !v.is_empty() {
                    let at = at % v.len();
                    let n = bytes.len().min(v.len() - at);
                    v[at..at + n].copy_from_slice(&bytes[..n]);
                }
            }
            Edit::Insert { at, bytes } => {
                let at = at % (v.len() + 1);
                v.splice(at..at, bytes.iter().copied());
            }
            Edit::Delete { at, len } => {
                if !v.is_empty() {
                    let at = at % v.len();
                    let end = (at + len).min(v.len());
                    v.drain(at..end);
                }
            }
            Edit::Append(bytes) => v.extend_from_slice(bytes),
            Edit::Truncate(n) => {
                if !v.is_empty() {
                    v.truncate(n % (v.len() + 1));
                }
            }
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fundamental codec law: decode(old, encode(old, new)) == new,
    /// for every codec, over arbitrary edit histories.
    #[test]
    fn all_codecs_round_trip(old in proptest::collection::vec(any::<u8>(), 0..4096),
                             edits in proptest::collection::vec(arb_edit(), 0..6)) {
        let new = apply_edits(&old, &edits);
        for codec in codecs() {
            let payload = codec.encode(&old, &new);
            let decoded = codec.decode(&old, &payload);
            prop_assert_eq!(decoded.as_deref().ok(), Some(new.as_slice()),
                            "codec {} failed", codec.id());
        }
    }

    /// Decoders never panic on arbitrary payload bytes — they return
    /// Ok or Err.
    #[test]
    fn decoders_are_total_on_garbage(old in proptest::collection::vec(any::<u8>(), 0..512),
                                     payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        for codec in codecs() {
            let _ = codec.decode(&old, &payload);
        }
    }

    /// LZ77 compression never loses data and bounds expansion.
    #[test]
    fn lz77_round_trip_and_bound(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let c = lz77::compress(&data);
        prop_assert_eq!(lz77::decompress(&c).unwrap(), data.clone());
        // Worst case: 1 control byte per 128 literals + 4 byte header.
        prop_assert!(c.len() <= 4 + data.len() + data.len() / 128 + 1);
    }

    /// Recipe payloads constructed from arbitrary op lists apply correctly.
    #[test]
    fn recipe_apply_matches_construction(
        old in proptest::collection::vec(any::<u8>(), 1..1024),
        raw_ops in proptest::collection::vec(
            (any::<bool>(), any::<usize>(), 1usize..128), 0..12)
    ) {
        let mut ops = Vec::new();
        let mut expected = Vec::new();
        for (is_copy, at, len) in raw_ops {
            if is_copy {
                let at = at % old.len();
                let len = len.min(old.len() - at);
                if len == 0 { continue; }
                ops.push(recipe::RecipeOp::Copy { old_offset: at as u32, len: len as u32 });
                expected.extend_from_slice(&old[at..at + len]);
            } else {
                let bytes: Vec<u8> = (0..len).map(|i| (i * 37 + at) as u8).collect();
                expected.extend_from_slice(&bytes);
                ops.push(recipe::RecipeOp::Data(bytes.into()));
            }
        }
        let payload = recipe::encode(expected.len(), &ops);
        prop_assert_eq!(recipe::apply(&old, &payload).unwrap(), expected);
    }

    /// Bitmap payload size is monotone-ish in the number of changed
    /// blocks: identical versions always beat fully-rewritten ones.
    #[test]
    fn bitmap_identical_cheaper_than_rewrite(data in proptest::collection::vec(any::<u8>(), 64..2048)) {
        let c = Bitmap::with_block_size(64);
        let same = c.encode(&data, &data).len();
        let rewritten: Vec<u8> = data.iter().map(|b| b.wrapping_add(1)).collect();
        let diff = c.encode(&data, &rewritten).len();
        prop_assert!(same < diff);
    }

    /// Vary-sized chunking is deterministic and covers the input exactly.
    #[test]
    fn chunking_partitions_input(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let params = ChunkParams { min: 64, max: 1024, mask: 0x7F };
        let chunks = fractal_protocols::varyblock::chunk(&data, &params);
        let mut pos = 0usize;
        for c in &chunks {
            prop_assert_eq!(c.offset, pos);
            prop_assert!(c.len > 0 && c.len <= params.max);
            pos += c.len;
        }
        prop_assert_eq!(pos, data.len());
    }
}
