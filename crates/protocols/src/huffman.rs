//! Canonical Huffman coding over the byte alphabet — the entropy stage
//! that turns the LZ77 token stream into a DEFLATE-class compressor
//! (the actual algorithm inside the paper's `gzip` tool).
//!
//! ## Format
//!
//! ```text
//! u32 raw_len
//! 128 bytes: code length of each symbol 0..=255, packed two per byte
//!            (low nibble = even symbol), lengths 0..=15
//! bitstream: MSB-first canonical codes
//! ```
//!
//! Codes are *canonical*: symbols sorted by (length, value) receive
//! lexicographically increasing codes, so the decoder needs only the
//! length table. Lengths are capped at [`MAX_BITS`]; the builder uses
//! heap-based Huffman followed by depth rebalancing when the cap binds.

use crate::traits::CodecError;

/// Maximum code length (DEFLATE's limit).
pub const MAX_BITS: usize = 15;
const ALPHABET: usize = 256;

/// Writes bits MSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the last byte (0..8; 0 means byte-aligned).
    used: u8,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Appends the low `n` bits of `value`, MSB first.
    pub fn put(&mut self, value: u32, n: u8) {
        debug_assert!(n <= 32);
        for i in (0..n).rev() {
            let bit = (value >> i) & 1;
            if self.used == 0 {
                self.bytes.push(0);
                self.used = 8;
            }
            let last = self.bytes.last_mut().expect("pushed");
            self.used -= 1;
            *last |= (bit as u8) << self.used;
        }
    }

    /// Finishes, returning the byte stream (zero-padded).
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    /// Total bits written.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 - self.used as usize
    }
}

/// Reads bits MSB-first.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit; `None` at end of input.
    pub fn bit(&mut self) -> Option<u32> {
        let byte = *self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Some(bit as u32)
    }
}

/// Computes capped canonical code lengths from symbol frequencies.
pub fn code_lengths(freqs: &[u64; ALPHABET]) -> [u8; ALPHABET] {
    let mut lengths = [0u8; ALPHABET];
    let present: Vec<usize> = (0..ALPHABET).filter(|&s| freqs[s] > 0).collect();
    match present.len() {
        0 => return lengths,
        1 => {
            lengths[present[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Heap-based Huffman over (weight, node). Internal nodes get indices
    // ≥ ALPHABET; parent[] reconstructs depths.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut parent = vec![usize::MAX; ALPHABET + present.len()];
    for &s in &present {
        heap.push(Reverse((freqs[s], s)));
    }
    let mut next_internal = ALPHABET;
    while heap.len() > 1 {
        let Reverse((wa, a)) = heap.pop().expect("≥2");
        let Reverse((wb, b)) = heap.pop().expect("≥2");
        parent[a] = next_internal;
        parent[b] = next_internal;
        heap.push(Reverse((wa + wb, next_internal)));
        next_internal += 1;
    }
    let root = heap.pop().expect("root").0 .1;

    for &s in &present {
        let mut depth = 0u8;
        let mut node = s;
        while node != root {
            node = parent[node];
            depth += 1;
        }
        lengths[s] = depth.max(1);
    }

    // Cap at MAX_BITS by flattening over-deep codes and restoring the
    // Kraft inequality (the standard zlib-style rebalance).
    let mut counts = [0usize; MAX_BITS + 1];
    for &s in &present {
        let l = (lengths[s] as usize).min(MAX_BITS);
        lengths[s] = l as u8;
        counts[l] += 1;
    }
    // Kraft sum in units of 2^-MAX_BITS.
    let kraft = |counts: &[usize; MAX_BITS + 1]| -> u64 {
        (1..=MAX_BITS).map(|l| (counts[l] as u64) << (MAX_BITS - l)).sum()
    };
    let budget = 1u64 << MAX_BITS;
    while kraft(&counts) > budget {
        // Find the deepest non-max length with entries, demote one code
        // from the longest length by promoting a shorter one down.
        let mut l = MAX_BITS - 1;
        while counts[l] == 0 {
            l -= 1;
        }
        counts[l] -= 1;
        counts[l + 1] += 2;
        counts[MAX_BITS] -= 1;
    }
    // Re-assign lengths canonically: shortest lengths to most frequent
    // symbols.
    let mut by_freq = present.clone();
    by_freq.sort_by_key(|&s| (Reverse(freqs[s]), s));
    let mut assigned = Vec::with_capacity(by_freq.len());
    #[allow(clippy::needless_range_loop)]
    for l in 1..=MAX_BITS {
        for _ in 0..counts[l] {
            assigned.push(l as u8);
        }
    }
    debug_assert_eq!(assigned.len(), by_freq.len());
    let mut out = [0u8; ALPHABET];
    for (&s, &l) in by_freq.iter().zip(&assigned) {
        out[s] = l;
    }
    out
}

/// Builds the canonical code for each symbol from its length table.
pub fn canonical_codes(lengths: &[u8; ALPHABET]) -> [(u32, u8); ALPHABET] {
    let mut count = [0u32; MAX_BITS + 1];
    for &l in lengths.iter() {
        if l > 0 {
            count[l as usize] += 1;
        }
    }
    let mut next = [0u32; MAX_BITS + 1];
    let mut code = 0u32;
    for l in 1..=MAX_BITS {
        code = (code + count[l - 1]) << 1;
        next[l] = code;
    }
    let mut codes = [(0u32, 0u8); ALPHABET];
    for s in 0..ALPHABET {
        let l = lengths[s];
        if l > 0 {
            codes[s] = (next[l as usize], l);
            next[l as usize] += 1;
        }
    }
    codes
}

/// Compresses `data` (header + canonical bitstream).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut freqs = [0u64; ALPHABET];
    for &b in data {
        freqs[b as usize] += 1;
    }
    let lengths = code_lengths(&freqs);
    let codes = canonical_codes(&lengths);

    let mut out = Vec::with_capacity(16 + 128 + data.len() / 2);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    for pair in lengths.chunks_exact(2) {
        out.push(pair[0] | (pair[1] << 4));
    }
    let mut bw = BitWriter::new();
    for &b in data {
        let (code, len) = codes[b as usize];
        bw.put(code, len);
    }
    out.extend_from_slice(&bw.finish());
    out
}

/// Decompresses a [`compress`] payload.
pub fn decompress(payload: &[u8]) -> Result<Vec<u8>, CodecError> {
    if payload.len() < 4 + 128 {
        return Err(CodecError::Truncated);
    }
    let raw_len = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
    let mut lengths = [0u8; ALPHABET];
    for (i, &b) in payload[4..4 + 128].iter().enumerate() {
        lengths[2 * i] = b & 0x0F;
        lengths[2 * i + 1] = b >> 4;
    }

    // Canonical decoding tables: per length, the first code, the count,
    // and the symbol list sorted by (length, symbol).
    let mut count = [0u32; MAX_BITS + 1];
    for &l in lengths.iter() {
        if l as usize > MAX_BITS {
            return Err(CodecError::BadFormat("code length over limit"));
        }
        if l > 0 {
            count[l as usize] += 1;
        }
    }
    if raw_len > 0 && count.iter().sum::<u32>() == 0 {
        return Err(CodecError::BadFormat("no codes declared"));
    }
    let mut first = [0u32; MAX_BITS + 1];
    let mut index = [0u32; MAX_BITS + 1];
    let mut code = 0u32;
    let mut idx = 0u32;
    for l in 1..=MAX_BITS {
        code = (code + count[l - 1]) << 1;
        first[l] = code;
        index[l] = idx;
        idx += count[l];
    }
    let mut symbols = Vec::with_capacity(idx as usize);
    for l in 1..=MAX_BITS as u8 {
        for (s, &sl) in lengths.iter().enumerate() {
            if sl == l {
                symbols.push(s as u8);
            }
        }
    }

    let mut br = BitReader::new(&payload[4 + 128..]);
    let mut out = Vec::with_capacity(raw_len);
    while out.len() < raw_len {
        let mut code = 0u32;
        let mut len = 0usize;
        loop {
            let bit = br.bit().ok_or(CodecError::Truncated)?;
            code = (code << 1) | bit;
            len += 1;
            if len > MAX_BITS {
                return Err(CodecError::BadFormat("code too long"));
            }
            if count[len] > 0 && code >= first[len] && code - first[len] < count[len] {
                let sym = symbols[(index[len] + code - first[len]) as usize];
                out.push(sym);
                break;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> Vec<u8> {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data, "round trip");
        c
    }

    #[test]
    fn empty_input() {
        round_trip(b"");
    }

    #[test]
    fn single_symbol_runs() {
        let c = round_trip(&vec![b'z'; 10_000]);
        // One symbol → 1-bit codes → ~1.25 KB + header.
        assert!(c.len() < 1500, "got {}", c.len());
    }

    #[test]
    fn two_symbols() {
        let data: Vec<u8> = (0..5000).map(|i| if i % 3 == 0 { b'a' } else { b'b' }).collect();
        round_trip(&data);
    }

    #[test]
    fn skewed_text_compresses() {
        let text = b"the adaptation proxy negotiates protocol adaptors ".repeat(200);
        let c = round_trip(&text);
        assert!(c.len() < text.len() * 6 / 10, "entropy stage should save 40%+");
    }

    #[test]
    fn uniform_bytes_do_not_explode() {
        let data: Vec<u8> = (0u32..20_000).map(|i| (i % 256) as u8).collect();
        let c = round_trip(&data);
        assert!(c.len() <= data.len() + 256);
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0u16..256).map(|b| b as u8).collect::<Vec<_>>().repeat(8);
        round_trip(&data);
    }

    #[test]
    fn pathological_frequencies_respect_cap() {
        // Fibonacci-ish frequencies force deep trees; lengths must cap at
        // MAX_BITS and stay decodable.
        let mut data = Vec::new();
        let mut f = (1u64, 1u64);
        for s in 0..40u8 {
            for _ in 0..f.0.min(100_000) {
                data.push(s);
            }
            f = (f.1, f.0 + f.1);
        }
        let mut freqs = [0u64; 256];
        for &b in &data {
            freqs[b as usize] += 1;
        }
        let lengths = code_lengths(&freqs);
        assert!(lengths.iter().all(|&l| l as usize <= MAX_BITS));
        // Kraft equality/inequality must hold.
        let kraft: u64 =
            lengths.iter().filter(|&&l| l > 0).map(|&l| 1u64 << (MAX_BITS - l as usize)).sum();
        assert!(kraft <= 1 << MAX_BITS, "Kraft violated: {kraft}");
        round_trip(&data);
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let mut freqs = [0u64; 256];
        for (s, f) in freqs.iter_mut().enumerate() {
            *f = (s as u64 % 17) + 1;
        }
        let lengths = code_lengths(&freqs);
        let codes = canonical_codes(&lengths);
        for a in 0..256 {
            for b in 0..256 {
                if a == b {
                    continue;
                }
                let (ca, la) = codes[a];
                let (cb, lb) = codes[b];
                if la == 0 || lb == 0 || la > lb {
                    continue;
                }
                // ca must not be a prefix of cb.
                assert_ne!(cb >> (lb - la), ca, "code {a} is a prefix of {b}");
            }
        }
    }

    #[test]
    fn truncated_payload_rejected() {
        let c = compress(b"some content worth compressing, repeated a bit, repeated a bit");
        for cut in 0..c.len() {
            assert!(decompress(&c[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bitio_round_trip() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0b1, 1);
        w.put(0xABCD, 16);
        let bits_written = w.bit_len();
        assert_eq!(bits_written, 20);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut val = 0u64;
        for _ in 0..20 {
            val = (val << 1) | r.bit().unwrap() as u64;
        }
        assert_eq!(val, (0b101 << 17) | (0b1 << 16) | 0xABCD);
    }
}
