//! LZ77/LZSS compression engine: the core of the [`gzip`](crate::gzip)
//! protocol.
//!
//! The paper's Gzip PAD "uses the LZ77 algorithm" (§4.1, via the gzip tool).
//! This is a from-scratch LZ77 with a hash-chain match finder and a
//! byte-aligned token stream chosen so the client-side decoder is a tight
//! loop of bulk copies — exactly what the FVM executes well.
//!
//! ## Token stream format
//!
//! ```text
//! u32 raw_len                       ; decompressed length
//! tokens until raw_len bytes produced:
//!   control byte C:
//!     0x00..=0x7F  literal run of C+1 bytes follows (1..=128)
//!     0x80..=0xFF  match: length = (C & 0x7F) + MIN_MATCH, then u16 distance
//! ```
//!
//! Distances are 1..=65535 back from the current output position; matches
//! may overlap forward (distance < length), the classic LZ replication
//! trick.

use crate::traits::CodecError;

/// Minimum match length worth encoding (a match token costs 3 bytes).
pub const MIN_MATCH: usize = 4;
/// Maximum match length encodable in one token.
pub const MAX_MATCH: usize = 0x7F + MIN_MATCH; // 131
/// Maximum back-reference distance.
pub const MAX_DIST: usize = 65535;
/// Maximum literal run per token.
pub const MAX_LITERAL_RUN: usize = 128;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// How many chain links the match finder follows before giving up. Higher
/// finds better matches but costs encode time (the server-side asymmetry
/// the paper's Figure 10 shows).
const MAX_CHAIN: usize = 64;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    // Multiplicative hash of the next 4 bytes.
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input` into the token stream format.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + input.len() / 2);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());

    // head[h] = most recent position with hash h; prev[pos & mask] = chain.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; input.len().max(1)];

    let mut pos = 0usize;
    let mut literal_start = 0usize;

    while pos < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;

        if pos + MIN_MATCH <= input.len() {
            let h = hash4(&input[pos..]);
            let mut candidate = head[h];
            let mut chain = 0;
            while candidate != usize::MAX && chain < MAX_CHAIN {
                let dist = pos - candidate;
                if dist > MAX_DIST {
                    break;
                }
                // Extend the match.
                let limit = (input.len() - pos).min(MAX_MATCH);
                let mut len = 0;
                while len < limit && input[candidate + len] == input[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = dist;
                    if len == limit {
                        break;
                    }
                }
                candidate = prev[candidate];
                chain += 1;
            }
            head_insert(&mut head, &mut prev, input, pos);
        }

        if best_len >= MIN_MATCH {
            flush_literals(&mut out, &input[literal_start..pos]);
            // Emit the match token.
            out.push(0x80 | ((best_len - MIN_MATCH) as u8));
            out.extend_from_slice(&(best_dist as u16).to_le_bytes());
            // Index the skipped positions so later matches can reference
            // them (bounded to keep encode cost linear-ish).
            let end = pos + best_len;
            let index_limit = (pos + 1 + 32).min(end);
            for p in pos + 1..index_limit {
                if p + MIN_MATCH <= input.len() {
                    head_insert(&mut head, &mut prev, input, p);
                }
            }
            pos = end;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    flush_literals(&mut out, &input[literal_start..]);
    out
}

#[inline]
fn head_insert(head: &mut [usize], prev: &mut [usize], input: &[u8], pos: usize) {
    let h = hash4(&input[pos..]);
    prev[pos] = head[h];
    head[h] = pos;
}

fn flush_literals(out: &mut Vec<u8>, mut lits: &[u8]) {
    while !lits.is_empty() {
        let take = lits.len().min(MAX_LITERAL_RUN);
        out.push((take - 1) as u8);
        out.extend_from_slice(&lits[..take]);
        lits = &lits[take..];
    }
}

/// Decompresses a token stream produced by [`compress`].
pub fn decompress(payload: &[u8]) -> Result<Vec<u8>, CodecError> {
    if payload.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let raw_len = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]) as usize;
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 4usize;
    while out.len() < raw_len {
        let c = *payload.get(pos).ok_or(CodecError::Truncated)?;
        pos += 1;
        if c < 0x80 {
            let run = c as usize + 1;
            let bytes = payload.get(pos..pos + run).ok_or(CodecError::Truncated)?;
            out.extend_from_slice(bytes);
            pos += run;
        } else {
            let len = (c & 0x7F) as usize + MIN_MATCH;
            let d = payload.get(pos..pos + 2).ok_or(CodecError::Truncated)?;
            let dist = u16::from_le_bytes([d[0], d[1]]) as usize;
            pos += 2;
            if dist == 0 || dist > out.len() {
                return Err(CodecError::BadFormat("match distance out of range"));
            }
            let start = out.len() - dist;
            for i in 0..len {
                let b = out[start + i];
                out.push(b);
            }
        }
    }
    if out.len() != raw_len {
        return Err(CodecError::LengthMismatch { declared: raw_len, produced: out.len() });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> Vec<u8> {
        let c = compress(data);
        let d = decompress(&c).expect("decompresses");
        assert_eq!(d, data);
        c
    }

    #[test]
    fn empty_input() {
        let c = round_trip(b"");
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn short_incompressible() {
        round_trip(b"abc");
        round_trip(b"a");
    }

    #[test]
    fn repeated_bytes_compress_well() {
        let data = vec![b'x'; 10_000];
        let c = round_trip(&data);
        assert!(c.len() < 400, "run of 10k identical bytes should shrink a lot, got {}", c.len());
    }

    #[test]
    fn periodic_pattern_compresses() {
        let data: Vec<u8> = b"the quick brown fox ".iter().copied().cycle().take(8000).collect();
        let c = round_trip(&data);
        assert!(c.len() < data.len() / 4, "periodic text should compress 4x+, got {}", c.len());
    }

    #[test]
    fn random_data_does_not_explode() {
        // Worst case: token overhead is 1 byte per 128 literals.
        let mut state = 0x12345678u32;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 24) as u8
            })
            .collect();
        let c = round_trip(&data);
        assert!(c.len() <= data.len() + data.len() / 100 + 16);
    }

    #[test]
    fn overlapping_match_replication() {
        // "abcabcabc…" forces dist=3 matches with len > dist.
        let data: Vec<u8> = b"abc".iter().copied().cycle().take(5000).collect();
        round_trip(&data);
    }

    #[test]
    fn long_matches_split_at_max_match() {
        let mut data = vec![0u8; 1000];
        data.extend_from_slice(&vec![0u8; MAX_MATCH * 3]);
        round_trip(&data);
    }

    #[test]
    fn text_like_content() {
        let text = "Fractal works entirely at the application level and has no \
                    specific requirements about underlying network topologies, \
                    connection media types, network protocols, and client \
                    hardware configurations. "
            .repeat(40);
        let c = round_trip(text.as_bytes());
        assert!(c.len() < text.len() / 3);
    }

    #[test]
    fn decompress_rejects_truncated_header() {
        assert_eq!(decompress(&[1, 2]), Err(CodecError::Truncated));
    }

    #[test]
    fn decompress_rejects_truncated_literals() {
        let mut payload = 10u32.to_le_bytes().to_vec();
        payload.push(9); // literal run of 10…
        payload.extend_from_slice(b"only5"); // …but 5 bytes
        assert_eq!(decompress(&payload), Err(CodecError::Truncated));
    }

    #[test]
    fn decompress_rejects_wild_distance() {
        let mut payload = 8u32.to_le_bytes().to_vec();
        payload.push(0x80); // match len=MIN_MATCH
        payload.extend_from_slice(&100u16.to_le_bytes()); // dist 100 into empty output
        assert!(matches!(decompress(&payload), Err(CodecError::BadFormat(_))));
    }

    #[test]
    fn decompress_rejects_zero_distance() {
        let mut payload = 8u32.to_le_bytes().to_vec();
        payload.push(0x00); // one literal
        payload.push(b'a');
        payload.push(0x80);
        payload.extend_from_slice(&0u16.to_le_bytes());
        assert!(matches!(decompress(&payload), Err(CodecError::BadFormat(_))));
    }

    #[test]
    fn all_byte_values_round_trip() {
        let data: Vec<u8> = (0u16..256).map(|b| b as u8).collect::<Vec<_>>().repeat(30);
        round_trip(&data);
    }
}
