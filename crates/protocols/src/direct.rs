//! Direct sending: the null protocol — content goes over the wire verbatim.
//!
//! "Strictly speaking, there is no communication optimization technique,
//! client and Web server just directly send content to each other" (§4.1).
//! It is still a PAD in the framework (the client must negotiate before
//! using it), and it wins on fast networks where any compute overhead costs
//! more than the saved bytes (Figure 11(b), Desktop/LAN).

use crate::traits::{CodecError, DiffCodec, ProtocolId};

/// The direct-sending codec.
#[derive(Clone, Copy, Debug, Default)]
pub struct Direct;

impl DiffCodec for Direct {
    fn id(&self) -> ProtocolId {
        ProtocolId::Direct
    }

    fn encode(&self, _old: &[u8], new: &[u8]) -> bytes::Bytes {
        bytes::Bytes::copy_from_slice(new)
    }

    fn decode(&self, _old: &[u8], payload: &[u8]) -> Result<bytes::Bytes, CodecError> {
        Ok(bytes::Bytes::copy_from_slice(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_identity() {
        let d = Direct;
        let new = b"the content".to_vec();
        let payload = d.encode(b"irrelevant old", &new);
        assert_eq!(payload, new);
        assert_eq!(d.decode(&[], &payload).unwrap(), new);
    }

    #[test]
    fn empty_content() {
        let d = Direct;
        assert_eq!(d.encode(&[], &[]), Vec::<u8>::new());
        assert_eq!(d.decode(&[], &[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn traffic_equals_content_size() {
        let d = Direct;
        let new = vec![7u8; 1234];
        let t = d.traffic(&[], &new);
        assert_eq!(t.downstream, 1234);
        assert_eq!(t.upstream, 0);
    }
}
