//! Transfer statistics helpers used by the experiment harness.

use crate::traits::{DiffCodec, Traffic};

/// Outcome of measuring one codec on one (old, new) pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TransferStats {
    /// Wire traffic in both directions.
    pub traffic: Traffic,
    /// Size of the new version (what Direct would send downstream).
    pub content_len: u64,
}

impl TransferStats {
    /// Downstream compression/differencing ratio versus sending raw
    /// content: `1.0` means no saving, `0.1` means 10× reduction.
    pub fn downstream_ratio(&self) -> f64 {
        if self.content_len == 0 {
            return 1.0;
        }
        self.traffic.downstream as f64 / self.content_len as f64
    }

    /// Total bytes saved (can be negative when overheads dominate).
    pub fn saved_bytes(&self) -> i64 {
        self.content_len as i64 - self.traffic.total() as i64
    }
}

/// Measures one codec on one version pair (verifying correctness on the
/// way — the decode must reproduce `new` exactly).
pub fn measure(codec: &dyn DiffCodec, old: &[u8], new: &[u8]) -> TransferStats {
    let payload = codec.encode(old, new);
    let decoded = codec.decode(old, &payload).expect("codec must round-trip");
    assert_eq!(decoded, new, "codec {} failed to reproduce content", codec.id());
    TransferStats {
        traffic: Traffic {
            upstream: codec.upstream_bytes(old.len()),
            downstream: payload.len() as u64,
        },
        content_len: new.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::Direct;
    use crate::gzip::Gzip;

    #[test]
    fn direct_ratio_is_one() {
        let s = measure(&Direct, &[], &vec![9u8; 1000]);
        assert!((s.downstream_ratio() - 1.0).abs() < 1e-9);
        assert_eq!(s.saved_bytes(), 0);
    }

    #[test]
    fn gzip_ratio_below_one_on_redundant_content() {
        let s = measure(&Gzip, &[], &b"abcd".repeat(1000));
        assert!(s.downstream_ratio() < 0.3);
        assert!(s.saved_bytes() > 0);
    }

    #[test]
    fn empty_content_ratio() {
        let s = measure(&Direct, &[], &[]);
        assert_eq!(s.downstream_ratio(), 1.0);
    }
}
