//! The Bitmap protocol: fixed-size block differencing (§4.1 protocol 4).
//!
//! From the paper: "files are updated by dividing both files into fix-sized
//! chunks. The client sends digests of each chunk to the server, and the
//! server responds only with new data chunks." It excels on formats whose
//! edits are positionally stable — DICOM/BMP images where pixels change in
//! place (reference \[29\], the computer-assisted-surgery workload).
//!
//! ## Wire formats
//!
//! *Upstream* (client → server), counted in traffic accounting:
//!
//! ```text
//! u32 block_size
//! u32 n_blocks_old
//! n_blocks_old × 8-byte truncated SHA-1 block digests
//! ```
//!
//! *Downstream* payload:
//!
//! ```text
//! u32 new_len
//! u32 block_size
//! u32 n_blocks                      ; = ceil(new_len / block_size)
//! ceil(n_blocks / 8) bitmap bytes   ; bit i set ⇒ block i included below
//! changed blocks, in order          ; last block may be short
//! ```
//!
//! Block *i* is marked unchanged only when the old version contains the
//! identical bytes at the same offsets, so the decoder can always rebuild
//! unchanged blocks from `old` directly.

use fractal_crypto::sha1::sha1;

use crate::traits::{CodecError, DiffCodec, ProtocolId};

/// Default block size. 2 KiB balances bitmap overhead against diff
/// granularity for the paper's ~32 KiB images.
pub const DEFAULT_BLOCK_SIZE: usize = 2048;

/// The Bitmap codec.
#[derive(Clone, Copy, Debug)]
pub struct Bitmap {
    /// Fixed block size in bytes.
    pub block_size: usize,
}

impl Default for Bitmap {
    fn default() -> Self {
        Bitmap { block_size: DEFAULT_BLOCK_SIZE }
    }
}

impl Bitmap {
    /// Creates a codec with an explicit block size (must be non-zero).
    pub fn with_block_size(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Bitmap { block_size }
    }

    /// Number of blocks covering `len` bytes.
    pub fn n_blocks(&self, len: usize) -> usize {
        len.div_ceil(self.block_size)
    }

    /// The 8-byte truncated digest of one block — what the client uploads.
    pub fn block_digest(block: &[u8]) -> [u8; 8] {
        let d = sha1(block);
        d.0[..8].try_into().expect("8-byte prefix")
    }

    /// Builds the upstream digest message for an old version (what the
    /// client's PAD computes and sends).
    pub fn upstream_message(&self, old: &[u8]) -> Vec<u8> {
        let n = self.n_blocks(old.len());
        let mut out = Vec::with_capacity(8 + n * 8);
        out.extend_from_slice(&(self.block_size as u32).to_le_bytes());
        out.extend_from_slice(&(n as u32).to_le_bytes());
        for i in 0..n {
            let start = i * self.block_size;
            let end = (start + self.block_size).min(old.len());
            out.extend_from_slice(&Self::block_digest(&old[start..end]));
        }
        out
    }
}

impl DiffCodec for Bitmap {
    fn id(&self) -> ProtocolId {
        ProtocolId::Bitmap
    }

    fn encode(&self, old: &[u8], new: &[u8]) -> bytes::Bytes {
        let bs = self.block_size;
        let n_blocks = self.n_blocks(new.len());
        let bitmap_len = n_blocks.div_ceil(8);

        let mut bitmap = vec![0u8; bitmap_len];
        let mut blocks: Vec<&[u8]> = Vec::new();
        for i in 0..n_blocks {
            let start = i * bs;
            let end = (start + bs).min(new.len());
            let new_block = &new[start..end];
            let unchanged = old.get(start..end).is_some_and(|ob| ob == new_block)
                // A full-size block match only counts when the old block is
                // also exactly this block's range (guaranteed by the get).
                ;
            if !unchanged {
                bitmap[i / 8] |= 1 << (i % 8);
                blocks.push(new_block);
            }
        }

        let data_len: usize = blocks.iter().map(|b| b.len()).sum();
        let mut out = Vec::with_capacity(12 + bitmap_len + data_len);
        out.extend_from_slice(&(new.len() as u32).to_le_bytes());
        out.extend_from_slice(&(bs as u32).to_le_bytes());
        out.extend_from_slice(&(n_blocks as u32).to_le_bytes());
        out.extend_from_slice(&bitmap);
        for b in blocks {
            out.extend_from_slice(b);
        }
        out.into()
    }

    fn decode(&self, old: &[u8], payload: &[u8]) -> Result<bytes::Bytes, CodecError> {
        if payload.len() < 12 {
            return Err(CodecError::Truncated);
        }
        let new_len = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
        let bs = u32::from_le_bytes(payload[4..8].try_into().unwrap()) as usize;
        let n_blocks = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
        if bs == 0 {
            return Err(CodecError::BadFormat("zero block size"));
        }
        if n_blocks != new_len.div_ceil(bs) {
            return Err(CodecError::BadFormat("block count inconsistent with length"));
        }
        let bitmap_len = n_blocks.div_ceil(8);
        let bitmap = payload.get(12..12 + bitmap_len).ok_or(CodecError::Truncated)?;
        let mut data_pos = 12 + bitmap_len;

        let mut out = Vec::with_capacity(new_len);
        for i in 0..n_blocks {
            let start = i * bs;
            let end = (start + bs).min(new_len);
            let block_len = end - start;
            let changed = bitmap[i / 8] & (1 << (i % 8)) != 0;
            if changed {
                let bytes =
                    payload.get(data_pos..data_pos + block_len).ok_or(CodecError::Truncated)?;
                out.extend_from_slice(bytes);
                data_pos += block_len;
            } else {
                let bytes = old.get(start..end).ok_or(CodecError::OldOutOfRange)?;
                out.extend_from_slice(bytes);
            }
        }
        if out.len() != new_len {
            return Err(CodecError::LengthMismatch { declared: new_len, produced: out.len() });
        }
        Ok(out.into())
    }

    fn upstream_bytes(&self, old_len: usize) -> u64 {
        8 + self.n_blocks(old_len) as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> Bitmap {
        Bitmap::with_block_size(16)
    }

    #[test]
    fn identical_versions_send_only_header() {
        let c = codec();
        let v = vec![42u8; 160];
        let payload = c.encode(&v, &v);
        // Header 12 + bitmap 2, zero blocks.
        assert_eq!(payload.len(), 14);
        assert_eq!(c.decode(&v, &payload).unwrap(), v);
    }

    #[test]
    fn single_block_edit_sends_one_block() {
        let c = codec();
        let old = vec![1u8; 160];
        let mut new = old.clone();
        new[40] = 99; // block 2
        let payload = c.encode(&old, &new);
        assert_eq!(payload.len(), 12 + 2 + 16);
        assert_eq!(c.decode(&old, &payload).unwrap(), new);
    }

    #[test]
    fn cold_fetch_sends_everything() {
        let c = codec();
        let new = (0..100u8).collect::<Vec<_>>();
        let payload = c.encode(&[], &new);
        assert_eq!(c.decode(&[], &payload).unwrap(), new);
        assert!(payload.len() >= new.len());
    }

    #[test]
    fn shrinking_content() {
        let c = codec();
        let old = vec![7u8; 160];
        let new = vec![7u8; 100]; // last block shortens: 6 full + 1 short... 100/16 → 7 blocks
        let payload = c.encode(&old, &new);
        assert_eq!(c.decode(&old, &payload).unwrap(), new);
    }

    #[test]
    fn growing_content() {
        let c = codec();
        let old = vec![7u8; 100];
        let new = vec![7u8; 160];
        let payload = c.encode(&old, &new);
        assert_eq!(c.decode(&old, &payload).unwrap(), new);
    }

    #[test]
    fn insertion_destroys_alignment_costs_everything_after() {
        // Bitmap's weakness: one inserted byte shifts all later blocks.
        let c = codec();
        let old: Vec<u8> = (0..200u8).map(|i| i.wrapping_mul(3)).collect();
        let mut new = old.clone();
        new.insert(10, 0xEE);
        let payload = c.encode(&old, &new);
        assert_eq!(c.decode(&old, &payload).unwrap(), new);
        // Nearly all blocks change: payload close to full size.
        assert!(payload.len() as f64 > new.len() as f64 * 0.9);
    }

    #[test]
    fn in_place_edit_is_cheap_where_insertion_is_not() {
        let c = codec();
        let old: Vec<u8> = (0..200u8).map(|i| i.wrapping_mul(3)).collect();
        let mut edited = old.clone();
        edited[10] = 0xEE; // in-place
        let in_place = c.encode(&old, &edited).len();
        let mut inserted = old.clone();
        inserted.insert(10, 0xEE);
        let shifted = c.encode(&old, &inserted).len();
        assert!(in_place < shifted / 2, "in-place {in_place} vs shifted {shifted}");
    }

    #[test]
    fn empty_new_version() {
        let c = codec();
        let payload = c.encode(b"old stuff", &[]);
        assert_eq!(c.decode(b"old stuff", &payload).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn upstream_accounting() {
        let c = codec();
        assert_eq!(c.upstream_bytes(0), 8);
        assert_eq!(c.upstream_bytes(1), 16);
        assert_eq!(c.upstream_bytes(16), 16);
        assert_eq!(c.upstream_bytes(17), 24);
        let msg = c.upstream_message(&[0u8; 17]);
        assert_eq!(msg.len() as u64, c.upstream_bytes(17));
    }

    #[test]
    fn decode_rejects_garbage() {
        let c = codec();
        assert_eq!(c.decode(&[], &[1, 2, 3]), Err(CodecError::Truncated));
        // Inconsistent block count.
        let mut p = Vec::new();
        p.extend_from_slice(&100u32.to_le_bytes());
        p.extend_from_slice(&16u32.to_le_bytes());
        p.extend_from_slice(&99u32.to_le_bytes());
        assert!(matches!(c.decode(&[], &p), Err(CodecError::BadFormat(_))));
        // Zero block size.
        let mut p = Vec::new();
        p.extend_from_slice(&0u32.to_le_bytes());
        p.extend_from_slice(&0u32.to_le_bytes());
        p.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(c.decode(&[], &p), Err(CodecError::BadFormat(_))));
    }

    #[test]
    fn decode_rejects_unchanged_block_missing_from_old() {
        let c = codec();
        let old = vec![5u8; 160];
        let payload = c.encode(&old, &old);
        // Claim the same payload against a shorter old version.
        assert_eq!(c.decode(&old[..50], &payload), Err(CodecError::OldOutOfRange));
    }

    #[test]
    fn truncated_block_data_rejected() {
        let c = codec();
        let old = vec![1u8; 64];
        let mut new = old.clone();
        new[0] = 2;
        let payload = c.encode(&old, &new);
        assert!(c.decode(&old, &payload[..payload.len() - 1]).is_err());
    }

    #[test]
    fn block_digests_differ_for_different_blocks() {
        assert_ne!(Bitmap::block_digest(b"aaaa"), Bitmap::block_digest(b"aaab"));
    }
}
