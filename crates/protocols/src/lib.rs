//! # fractal-protocols
//!
//! The four communication-optimization protocols evaluated by the Fractal
//! paper's case study (§4.1), plus one related-work extension:
//!
//! | Protocol | Module | Idea |
//! |---|---|---|
//! | Direct sending | [`direct`] | no optimization; send content verbatim |
//! | Gzip | [`gzip`] | LZ77-family compression at the server, decompression at the client |
//! | Bitmap | [`bitmap`] | fixed-size block diff against the client's old version |
//! | Vary-sized blocking | [`varyblock`] | LBFS-style content-defined chunk diff (Rabin fingerprints) |
//! | Fixed-sized blocking | [`fixedblock`] | rsync-style rolling-checksum diff (related work §5, extension) |
//!
//! Each protocol is a [`DiffCodec`](crate::traits::DiffCodec#): the server encodes
//! `(old, new) → payload`, the client decodes `(old, payload) → new`. The
//! native decoders here are the *reference* implementations; the deployable
//! client-side decoders are FVM mobile-code modules in `fractal-pads` whose
//! byte-level wire formats are defined by this crate and differential-tested
//! against these references.
//!
//! All formats use little-endian integers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod deflate;
pub mod direct;
pub mod fixedblock;
pub mod gzip;
pub mod huffman;
pub mod lz77;
pub mod recipe;
pub mod stats;
pub mod traits;
pub mod varyblock;

pub use traits::{CodecError, DiffCodec, ProtocolId, Traffic};
