//! The Vary-sized blocking protocol: LBFS-style content-defined chunk
//! differencing (§4.1 protocol 3).
//!
//! "Files are divided into chunks, demarcated by points where the Rabin
//! fingerprint of the previous 48 bytes matches a specific polynomial
//! value" (the paper, citing LBFS). Because chunk boundaries follow
//! *content*, insertions and deletions shift chunk positions without
//! changing the chunks themselves, so only genuinely new data crosses the
//! wire — the least traffic of all four protocols (Figure 11(a)) at the
//! price of the heaviest server-side compute (Figure 10(a–c)).
//!
//! The server stores the old version it last sent this client (Fractal's
//! adaptive-content store), chunks both versions, digests every chunk, and
//! emits a [`recipe`](crate::recipe#): `COPY` ops for chunks the old version
//! already has, `DATA` ops for new chunks.

use std::collections::HashMap;

use fractal_crypto::rabin::RollingHash;
use fractal_crypto::sha1::sha1;

use crate::recipe::{self, RecipeOp};
use crate::traits::{CodecError, DiffCodec, ProtocolId};

/// Chunking parameters (LBFS-style).
#[derive(Clone, Copy, Debug)]
pub struct ChunkParams {
    /// Minimum chunk size; boundaries are suppressed before this.
    pub min: usize,
    /// Maximum chunk size; a boundary is forced at this.
    pub max: usize,
    /// Boundary mask: a boundary occurs when `fp & mask == mask`. The mask
    /// width sets the expected chunk size (≈ `min + 2^popcount(mask)`).
    pub mask: u64,
}

impl Default for ChunkParams {
    fn default() -> Self {
        // Expected ~512 B + 256 B min = ~768 B chunks: fine-grained
        // enough to isolate localized edits inside one image of a 135 KB
        // page (the extra chunk digests are exactly the server-side compute
        // the protocol pays for its traffic savings).
        ChunkParams { min: 256, max: 4096, mask: 0x1FF }
    }
}

/// One content-defined chunk.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Chunk {
    /// Offset within the source buffer.
    pub offset: usize,
    /// Chunk length.
    pub len: usize,
}

/// Splits `data` into content-defined chunks.
pub fn chunk(data: &[u8], params: &ChunkParams) -> Vec<Chunk> {
    assert!(params.min >= 1 && params.max >= params.min);
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut rh = RollingHash::new();
    let mut i = 0usize;
    while i < data.len() {
        let fp = rh.roll(data[i]);
        let len = i + 1 - start;
        let boundary = (rh.is_warm() && len >= params.min && (fp & params.mask) == params.mask)
            || len >= params.max;
        if boundary {
            chunks.push(Chunk { offset: start, len });
            start = i + 1;
            rh.reset();
        }
        i += 1;
    }
    if start < data.len() {
        chunks.push(Chunk { offset: start, len: data.len() - start });
    }
    chunks
}

/// The vary-sized blocking codec.
#[derive(Clone, Copy, Debug, Default)]
pub struct VaryBlock {
    /// Chunking parameters.
    pub params: ChunkParams,
}

impl VaryBlock {
    /// Creates a codec with explicit chunk parameters.
    pub fn with_params(params: ChunkParams) -> Self {
        VaryBlock { params }
    }
}

impl DiffCodec for VaryBlock {
    fn id(&self) -> ProtocolId {
        ProtocolId::VaryBlock
    }

    fn encode(&self, old: &[u8], new: &[u8]) -> bytes::Bytes {
        // Index old chunks by digest. This double-chunk-and-hash pass is
        // the protocol's heavy server-side compute.
        let old_chunks = chunk(old, &self.params);
        let mut index: HashMap<[u8; 20], Chunk> = HashMap::with_capacity(old_chunks.len());
        for c in old_chunks {
            let d = sha1(&old[c.offset..c.offset + c.len]);
            index.entry(d.0).or_insert(c);
        }

        let new_chunks = chunk(new, &self.params);
        let mut ops: Vec<RecipeOp> = Vec::with_capacity(new_chunks.len());
        // Pending literal run: adjacent unmatched chunks coalesce here and
        // flush as one Data op (same wire bytes as the old in-place merge).
        let mut lit: Vec<u8> = Vec::new();
        for c in new_chunks {
            let bytes = &new[c.offset..c.offset + c.len];
            let d = sha1(bytes);
            match index.get(&d.0) {
                Some(oc) => {
                    if !lit.is_empty() {
                        ops.push(RecipeOp::Data(std::mem::take(&mut lit).into()));
                    }
                    // Merge adjacent copies for a tighter recipe.
                    if let Some(RecipeOp::Copy { old_offset, len }) = ops.last_mut() {
                        if *old_offset as usize + *len as usize == oc.offset {
                            *len += oc.len as u32;
                            continue;
                        }
                    }
                    ops.push(RecipeOp::Copy { old_offset: oc.offset as u32, len: oc.len as u32 });
                }
                None => lit.extend_from_slice(bytes),
            }
        }
        if !lit.is_empty() {
            ops.push(RecipeOp::Data(lit.into()));
        }
        recipe::encode(new.len(), &ops).into()
    }

    fn decode(&self, old: &[u8], payload: &[u8]) -> Result<bytes::Bytes, CodecError> {
        recipe::apply(old, payload).map(Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(seed: u64, len: usize) -> Vec<u8> {
        // xorshift-ish deterministic bytes.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn chunks_cover_input_exactly() {
        let d = data(1, 100_000);
        let params = ChunkParams::default();
        let chunks = chunk(&d, &params);
        let mut pos = 0;
        for c in &chunks {
            assert_eq!(c.offset, pos);
            assert!(c.len <= params.max);
            pos += c.len;
        }
        assert_eq!(pos, d.len());
        // Non-final chunks respect the minimum.
        for c in &chunks[..chunks.len().saturating_sub(1)] {
            assert!(c.len >= params.min, "chunk of {} below min", c.len);
        }
    }

    #[test]
    fn chunking_empty_input() {
        assert!(chunk(&[], &ChunkParams::default()).is_empty());
    }

    #[test]
    fn chunk_boundaries_resist_insertion() {
        // After inserting bytes near the front, the majority of chunk
        // *contents* (by digest) are preserved — the LBFS property.
        let old = data(2, 120_000);
        let mut new = old.clone();
        for (i, b) in data(3, 40).into_iter().enumerate() {
            new.insert(1000 + i, b);
        }
        let params = ChunkParams::default();
        let old_digests: std::collections::HashSet<_> =
            chunk(&old, &params).iter().map(|c| sha1(&old[c.offset..c.offset + c.len]).0).collect();
        let new_chunks = chunk(&new, &params);
        let preserved = new_chunks
            .iter()
            .filter(|c| old_digests.contains(&sha1(&new[c.offset..c.offset + c.len]).0))
            .count();
        assert!(
            preserved * 10 >= new_chunks.len() * 7,
            "only {preserved}/{} chunks preserved after insertion",
            new_chunks.len()
        );
    }

    #[test]
    fn round_trip_identical() {
        let v = data(4, 50_000);
        let c = VaryBlock::default();
        let payload = c.encode(&v, &v);
        assert_eq!(c.decode(&v, &payload).unwrap(), v);
        // Identical versions: nearly pure COPY ops.
        assert!(payload.len() < 200, "identical content payload was {}", payload.len());
    }

    #[test]
    fn round_trip_insertion() {
        let old = data(5, 80_000);
        let mut new = old.clone();
        let patch = data(6, 100);
        for (i, b) in patch.into_iter().enumerate() {
            new.insert(30_000 + i, b);
        }
        let c = VaryBlock::default();
        let payload = c.encode(&old, &new);
        assert_eq!(c.decode(&old, &payload).unwrap(), new);
        assert!(
            payload.len() < new.len() / 3,
            "insertion diff should be small, got {}",
            payload.len()
        );
    }

    #[test]
    fn round_trip_deletion() {
        let old = data(7, 80_000);
        let mut new = old.clone();
        new.drain(20_000..21_000);
        let c = VaryBlock::default();
        let payload = c.encode(&old, &new);
        assert_eq!(c.decode(&old, &payload).unwrap(), new);
        assert!(payload.len() < new.len() / 3);
    }

    #[test]
    fn cold_fetch_round_trips() {
        let new = data(8, 30_000);
        let c = VaryBlock::default();
        let payload = c.encode(&[], &new);
        assert_eq!(c.decode(&[], &payload).unwrap(), new);
    }

    #[test]
    fn empty_new_version() {
        let c = VaryBlock::default();
        let payload = c.encode(b"old", &[]);
        assert_eq!(c.decode(b"old", &payload).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn no_upstream_bytes() {
        // Server-side compare against its stored copy: nothing upstream.
        assert_eq!(VaryBlock::default().upstream_bytes(10_000), 0);
    }

    #[test]
    fn adjacent_copies_are_merged() {
        let v = data(9, 60_000);
        let c = VaryBlock::default();
        let payload = c.encode(&v, &v);
        let (_, ops) = crate::recipe::parse(&payload).unwrap();
        // Identical content should collapse to a single COPY.
        assert_eq!(ops.len(), 1, "ops: {ops:?}");
        assert!(matches!(ops[0], RecipeOp::Copy { old_offset: 0, .. }));
    }

    #[test]
    fn custom_params_respected() {
        let params = ChunkParams { min: 64, max: 256, mask: 0x3F };
        let d = data(10, 10_000);
        for c in chunk(&d, &params) {
            assert!(c.len <= 256);
        }
    }
}
