//! The Gzip protocol adaptor: compress at the server, decompress at the
//! client (§4.1 protocol 2).
//!
//! The engine is the from-scratch LZ77 in [`crate::lz77`] (the paper's gzip
//! likewise "uses the LZ77 algorithm"). The old version is ignored — Gzip is
//! a pure compressor, which is why it beats the differencing protocols on
//! cold fetches and fresh text but loses to them when versions are similar.

use crate::lz77;
use crate::traits::{CodecError, DiffCodec, ProtocolId};

/// The Gzip (LZ77) codec.
#[derive(Clone, Copy, Debug, Default)]
pub struct Gzip;

impl DiffCodec for Gzip {
    fn id(&self) -> ProtocolId {
        ProtocolId::Gzip
    }

    fn encode(&self, _old: &[u8], new: &[u8]) -> bytes::Bytes {
        lz77::compress(new).into()
    }

    fn decode(&self, _old: &[u8], payload: &[u8]) -> Result<bytes::Bytes, CodecError> {
        lz77::decompress(payload).map(Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_ignores_old() {
        let g = Gzip;
        let new = b"compress me please, compress me please".to_vec();
        let payload = g.encode(b"some old version", &new);
        assert_eq!(g.decode(b"different old", &payload).unwrap(), new);
        assert_eq!(g.decode(&[], &payload).unwrap(), new);
    }

    #[test]
    fn compresses_redundant_content() {
        let g = Gzip;
        let new = b"0123456789".repeat(500);
        let t = g.traffic(&[], &new);
        assert!(t.downstream < new.len() as u64 / 3);
        assert_eq!(t.upstream, 0);
    }

    #[test]
    fn id_is_gzip() {
        assert_eq!(Gzip.id(), ProtocolId::Gzip);
    }
}
