//! The protocol-codec abstraction shared by all communication-optimization
//! protocols, and the [`ProtocolId`] naming them across the framework.

/// Identifies one of the communication-optimization protocols (the leaves of
/// the case-study PAT, Figure 8 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum ProtocolId {
    /// Direct sending — no optimization.
    Direct,
    /// Gzip — LZ77-family compression.
    Gzip,
    /// Bitmap — fixed-size block differencing.
    Bitmap,
    /// Vary-sized blocking — content-defined chunk differencing (LBFS).
    VaryBlock,
    /// Fixed-sized blocking — rsync-style rolling-checksum differencing
    /// (related-work extension).
    FixedBlock,
}

impl ProtocolId {
    /// All protocols in canonical order.
    pub const ALL: [ProtocolId; 5] = [
        ProtocolId::Direct,
        ProtocolId::Gzip,
        ProtocolId::Bitmap,
        ProtocolId::VaryBlock,
        ProtocolId::FixedBlock,
    ];

    /// The paper's four case-study protocols (Table 1).
    pub const PAPER_FOUR: [ProtocolId; 4] =
        [ProtocolId::Direct, ProtocolId::Gzip, ProtocolId::Bitmap, ProtocolId::VaryBlock];

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolId::Direct => "Direct sending",
            ProtocolId::Gzip => "Gzip",
            ProtocolId::Bitmap => "Bitmap",
            ProtocolId::VaryBlock => "Vary-sized blocking",
            ProtocolId::FixedBlock => "Fixed-sized blocking",
        }
    }

    /// Short identifier used in PAD names and logs.
    pub fn slug(self) -> &'static str {
        match self {
            ProtocolId::Direct => "direct",
            ProtocolId::Gzip => "gzip",
            ProtocolId::Bitmap => "bitmap",
            ProtocolId::VaryBlock => "vary",
            ProtocolId::FixedBlock => "fixed",
        }
    }

    /// Stable numeric id used on the wire.
    pub fn wire_id(self) -> u16 {
        match self {
            ProtocolId::Direct => 1,
            ProtocolId::Gzip => 2,
            ProtocolId::Bitmap => 3,
            ProtocolId::VaryBlock => 4,
            ProtocolId::FixedBlock => 5,
        }
    }

    /// Decodes a wire id.
    pub fn from_wire_id(id: u16) -> Option<ProtocolId> {
        ProtocolId::ALL.into_iter().find(|p| p.wire_id() == id)
    }
}

impl core::fmt::Display for ProtocolId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors from the native protocol decoders.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// Payload ends before a declared field.
    Truncated,
    /// Structurally invalid payload.
    BadFormat(&'static str),
    /// A copy op references bytes the old version does not have.
    OldOutOfRange,
    /// Decoded output did not reach the declared length.
    LengthMismatch {
        /// Length the payload header declared.
        declared: usize,
        /// Length actually produced.
        produced: usize,
    },
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload truncated"),
            CodecError::BadFormat(what) => write!(f, "bad payload format: {what}"),
            CodecError::OldOutOfRange => write!(f, "copy op outside old version"),
            CodecError::LengthMismatch { declared, produced } => {
                write!(f, "declared length {declared} but produced {produced}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Bytes on the wire for one content transfer, split by direction. The
/// paper's Figure 11(a) reports the sum.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Traffic {
    /// Client → server bytes (e.g. block digests for Bitmap).
    pub upstream: u64,
    /// Server → client bytes (the encoded payload).
    pub downstream: u64,
}

impl Traffic {
    /// Total bytes in both directions.
    pub fn total(&self) -> u64 {
        self.upstream + self.downstream
    }
}

/// A differencing/compression codec: the server-side encoder plus the native
/// reference decoder for one protocol.
///
/// `old` is the version the client already holds (empty slice on a cold
/// fetch); `new` is the version to deliver. Every codec must satisfy
/// `decode(old, encode(old, new)) == new` for all inputs — the property
/// tests in each module and in `tests/` enforce this, and the FVM decoders
/// are differential-tested against `decode`.
///
/// Payloads are produced as [`bytes::Bytes`] so the session pipeline can
/// hand the same encoded buffer to the response store, the wire-accounting
/// layer, and the client without copying — cached responses and repeated
/// downloads are refcount bumps.
pub trait DiffCodec {
    /// Which protocol this codec implements.
    fn id(&self) -> ProtocolId;

    /// Server-side encode.
    fn encode(&self, old: &[u8], new: &[u8]) -> bytes::Bytes;

    /// Client-side reference decode.
    fn decode(&self, old: &[u8], payload: &[u8]) -> Result<bytes::Bytes, CodecError>;

    /// Bytes the client must send upstream before the server can encode
    /// (e.g. Bitmap's block digests). Defaults to a bare request header.
    fn upstream_bytes(&self, _old_len: usize) -> u64 {
        0
    }

    /// Full traffic accounting for one transfer.
    fn traffic(&self, old: &[u8], new: &[u8]) -> Traffic {
        Traffic {
            upstream: self.upstream_bytes(old.len()),
            downstream: self.encode(old, new).len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_ids_round_trip() {
        for p in ProtocolId::ALL {
            assert_eq!(ProtocolId::from_wire_id(p.wire_id()), Some(p));
        }
        assert_eq!(ProtocolId::from_wire_id(0), None);
        assert_eq!(ProtocolId::from_wire_id(999), None);
    }

    #[test]
    fn names_and_slugs_unique() {
        let names: std::collections::HashSet<_> =
            ProtocolId::ALL.iter().map(|p| p.name()).collect();
        let slugs: std::collections::HashSet<_> =
            ProtocolId::ALL.iter().map(|p| p.slug()).collect();
        assert_eq!(names.len(), ProtocolId::ALL.len());
        assert_eq!(slugs.len(), ProtocolId::ALL.len());
    }

    #[test]
    fn traffic_total() {
        let t = Traffic { upstream: 10, downstream: 32 };
        assert_eq!(t.total(), 42);
    }

    #[test]
    fn paper_four_is_subset_of_all() {
        for p in ProtocolId::PAPER_FOUR {
            assert!(ProtocolId::ALL.contains(&p));
        }
    }
}
