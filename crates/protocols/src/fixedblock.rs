//! Fixed-sized blocking: the rsync algorithm, included as the related-work
//! extension (§5: "Fix-sized blocking was used in the Rsync software").
//!
//! The client uploads, for every fixed-size block of its *old* version, a
//! cheap 32-bit rolling checksum and an 8-byte strong digest. The server
//! slides a window over the *new* version; wherever the rolling checksum
//! hits a known block (confirmed by the strong digest) it emits a `COPY`,
//! otherwise literal bytes accumulate into `DATA` runs. The downstream
//! payload reuses the [`recipe`](crate::recipe#) module format, so the same FVM
//! decoder serves this protocol and vary-sized blocking.
//!
//! ## Upstream format
//!
//! ```text
//! u32 block_size
//! u32 n_blocks
//! n_blocks × { u32 weak_sum, 8-byte strong digest }
//! ```

use std::collections::HashMap;

use fractal_crypto::checksum::{weak_sum, weak_sum_roll};
use fractal_crypto::sha1::sha1;

use crate::recipe::{self, RecipeOp};
use crate::traits::{CodecError, DiffCodec, ProtocolId};

/// Default rsync block size.
pub const DEFAULT_BLOCK_SIZE: usize = 2048;

/// The fixed-sized blocking (rsync-style) codec.
#[derive(Clone, Copy, Debug)]
pub struct FixedBlock {
    /// Block size in bytes.
    pub block_size: usize,
}

impl Default for FixedBlock {
    fn default() -> Self {
        FixedBlock { block_size: DEFAULT_BLOCK_SIZE }
    }
}

impl FixedBlock {
    /// Creates a codec with an explicit block size.
    pub fn with_block_size(block_size: usize) -> Self {
        assert!(block_size > 0);
        FixedBlock { block_size }
    }

    fn strong(block: &[u8]) -> [u8; 8] {
        sha1(block).0[..8].try_into().expect("8-byte prefix")
    }

    /// Builds the upstream signature message for the client's old version.
    pub fn upstream_message(&self, old: &[u8]) -> Vec<u8> {
        let bs = self.block_size;
        let n = old.len() / bs; // only full blocks are matchable
        let mut out = Vec::with_capacity(8 + n * 12);
        out.extend_from_slice(&(bs as u32).to_le_bytes());
        out.extend_from_slice(&(n as u32).to_le_bytes());
        for i in 0..n {
            let block = &old[i * bs..(i + 1) * bs];
            out.extend_from_slice(&weak_sum(block).to_le_bytes());
            out.extend_from_slice(&Self::strong(block));
        }
        out
    }
}

impl DiffCodec for FixedBlock {
    fn id(&self) -> ProtocolId {
        ProtocolId::FixedBlock
    }

    fn encode(&self, old: &[u8], new: &[u8]) -> bytes::Bytes {
        let bs = self.block_size;
        // Signature table the client would have uploaded.
        let n_old = old.len() / bs;
        let mut table: HashMap<u32, Vec<usize>> = HashMap::with_capacity(n_old);
        let mut strong_of: Vec<[u8; 8]> = Vec::with_capacity(n_old);
        for i in 0..n_old {
            let block = &old[i * bs..(i + 1) * bs];
            table.entry(weak_sum(block)).or_default().push(i);
            strong_of.push(Self::strong(block));
        }

        let mut ops: Vec<RecipeOp> = Vec::new();
        let mut lit_start = 0usize;
        let mut pos = 0usize;
        let mut rolling: Option<u32> = None;

        let push_copy = |ops: &mut Vec<RecipeOp>, block_idx: usize| {
            let old_offset = (block_idx * bs) as u32;
            if let Some(RecipeOp::Copy { old_offset: o, len }) = ops.last_mut() {
                if *o as usize + *len as usize == old_offset as usize {
                    *len += bs as u32;
                    return;
                }
            }
            ops.push(RecipeOp::Copy { old_offset, len: bs as u32 });
        };

        while pos + bs <= new.len() {
            let w = match rolling {
                Some(prev) => {
                    let w = weak_sum_roll(prev, new[pos - 1], new[pos + bs - 1], bs);
                    debug_assert_eq!(w, weak_sum(&new[pos..pos + bs]));
                    w
                }
                None => weak_sum(&new[pos..pos + bs]),
            };
            rolling = Some(w);

            let matched = table.get(&w).and_then(|cands| {
                let window = &new[pos..pos + bs];
                let strong = Self::strong(window);
                cands.iter().copied().find(|&i| strong_of[i] == strong)
            });

            if let Some(block_idx) = matched {
                if lit_start < pos {
                    push_data(&mut ops, &new[lit_start..pos]);
                }
                push_copy(&mut ops, block_idx);
                pos += bs;
                lit_start = pos;
                rolling = None;
            } else {
                pos += 1;
            }
        }
        if lit_start < new.len() {
            push_data(&mut ops, &new[lit_start..]);
        }
        recipe::encode(new.len(), &ops).into()
    }

    fn decode(&self, old: &[u8], payload: &[u8]) -> Result<bytes::Bytes, CodecError> {
        recipe::apply(old, payload).map(Into::into)
    }

    fn upstream_bytes(&self, old_len: usize) -> u64 {
        8 + (old_len / self.block_size) as u64 * 12
    }
}

fn push_data(ops: &mut Vec<RecipeOp>, bytes: &[u8]) {
    // Literal runs arrive already coalesced (a Data push is always followed
    // by a Copy), so each run becomes exactly one op.
    debug_assert!(!matches!(ops.last(), Some(RecipeOp::Data(_))));
    ops.push(RecipeOp::Data(bytes::Bytes::copy_from_slice(bytes)));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(seed: u64, len: usize) -> Vec<u8> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 32) as u8
            })
            .collect()
    }

    fn codec() -> FixedBlock {
        FixedBlock::with_block_size(64)
    }

    #[test]
    fn identical_versions_collapse_to_one_copy() {
        let v = data(1, 64 * 100);
        let c = codec();
        let payload = c.encode(&v, &v);
        assert_eq!(c.decode(&v, &payload).unwrap(), v);
        let (_, ops) = recipe::parse(&payload).unwrap();
        assert_eq!(ops.len(), 1);
    }

    #[test]
    fn insertion_found_at_shifted_offsets() {
        // rsync's advantage over Bitmap: matches at arbitrary offsets.
        let old = data(2, 64 * 50);
        let mut new = old.clone();
        new.insert(100, 0xAA); // shifts everything after by 1
        let c = codec();
        let payload = c.encode(&old, &new);
        assert_eq!(c.decode(&old, &payload).unwrap(), new);
        assert!(
            payload.len() < new.len() / 4,
            "shifted content should still diff small, got {} of {}",
            payload.len(),
            new.len()
        );
    }

    #[test]
    fn cold_fetch_round_trips() {
        let new = data(3, 5000);
        let c = codec();
        let payload = c.encode(&[], &new);
        assert_eq!(c.decode(&[], &payload).unwrap(), new);
    }

    #[test]
    fn tail_shorter_than_block_round_trips() {
        let old = data(4, 64 * 10 + 17);
        let mut new = old.clone();
        new[640] ^= 1;
        let c = codec();
        let payload = c.encode(&old, &new);
        assert_eq!(c.decode(&old, &payload).unwrap(), new);
    }

    #[test]
    fn empty_inputs() {
        let c = codec();
        assert_eq!(c.decode(&[], &c.encode(&[], &[])).unwrap(), Vec::<u8>::new());
        let new = data(5, 100);
        assert_eq!(c.decode(&[], &c.encode(&[], &new)).unwrap(), new);
    }

    #[test]
    fn upstream_accounting_matches_message() {
        let c = codec();
        let old = data(6, 64 * 9 + 3);
        assert_eq!(c.upstream_message(&old).len() as u64, c.upstream_bytes(old.len()));
        assert_eq!(c.upstream_bytes(0), 8);
    }

    #[test]
    fn rearranged_blocks_still_match() {
        let c = codec();
        let a = data(7, 64 * 4);
        let b = data(8, 64 * 4);
        let old = [a.clone(), b.clone()].concat();
        let new = [b, a].concat(); // swap halves
        let payload = c.encode(&old, &new);
        assert_eq!(c.decode(&old, &payload).unwrap(), new);
        let (_, ops) = recipe::parse(&payload).unwrap();
        assert!(
            ops.iter().all(|o| matches!(o, RecipeOp::Copy { .. })),
            "swap should be pure copies: {ops:?}"
        );
    }
}
