//! The shared *recipe* wire format used by the differencing protocols.
//!
//! Both vary-sized blocking and fixed-sized blocking ultimately tell the
//! client the same thing: "rebuild the new version by copying these ranges
//! of your old version and splicing in these fresh bytes". That instruction
//! list is a recipe:
//!
//! ```text
//! u32 new_len
//! ops until new_len bytes produced:
//!   u8 0x00 = COPY:  u32 old_offset, u32 len     ; copy from old version
//!   u8 0x01 = DATA:  u32 len, bytes              ; splice literal bytes
//! ```
//!
//! Keeping one format means one FVM decoder serves both protocols — the
//! PADs differ only in their server-side encoders, which is faithful to how
//! the paper treats them as siblings in the PAT.

use crate::traits::CodecError;
use bytes::Bytes;

/// Opcode byte for a copy-from-old instruction.
pub const OP_COPY: u8 = 0x00;
/// Opcode byte for a literal-data instruction.
pub const OP_DATA: u8 = 0x01;

/// One rebuild instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RecipeOp {
    /// Copy `len` bytes from `old_offset` in the old version.
    Copy {
        /// Offset into the old version.
        old_offset: u32,
        /// Bytes to copy.
        len: u32,
    },
    /// Splice literal bytes. Held as [`Bytes`] so parsing a payload can
    /// hand out refcounted sub-views of the wire buffer instead of copies —
    /// see [`parse_shared`].
    Data(Bytes),
}

impl RecipeOp {
    /// Output bytes this op produces.
    pub fn output_len(&self) -> usize {
        match self {
            RecipeOp::Copy { len, .. } => *len as usize,
            RecipeOp::Data(bytes) => bytes.len(),
        }
    }

    /// Wire size of this op.
    pub fn wire_len(&self) -> usize {
        match self {
            RecipeOp::Copy { .. } => 1 + 8,
            RecipeOp::Data(bytes) => 1 + 4 + bytes.len(),
        }
    }
}

/// Serializes ops into a recipe payload.
pub fn encode(new_len: usize, ops: &[RecipeOp]) -> Vec<u8> {
    let body: usize = ops.iter().map(RecipeOp::wire_len).sum();
    let mut out = Vec::with_capacity(4 + body);
    out.extend_from_slice(&(new_len as u32).to_le_bytes());
    for op in ops {
        match op {
            RecipeOp::Copy { old_offset, len } => {
                out.push(OP_COPY);
                out.extend_from_slice(&old_offset.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            RecipeOp::Data(bytes) => {
                out.push(OP_DATA);
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
            }
        }
    }
    out
}

/// Applies a recipe payload to `old`, producing the new version.
pub fn apply(old: &[u8], payload: &[u8]) -> Result<Vec<u8>, CodecError> {
    if payload.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let new_len = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]) as usize;
    let mut out = Vec::with_capacity(new_len);
    let mut pos = 4usize;
    while out.len() < new_len {
        let op = *payload.get(pos).ok_or(CodecError::Truncated)?;
        pos += 1;
        match op {
            OP_COPY => {
                let f = payload.get(pos..pos + 8).ok_or(CodecError::Truncated)?;
                let off = u32::from_le_bytes([f[0], f[1], f[2], f[3]]) as usize;
                let len = u32::from_le_bytes([f[4], f[5], f[6], f[7]]) as usize;
                pos += 8;
                let src = old
                    .get(off..off.checked_add(len).ok_or(CodecError::OldOutOfRange)?)
                    .ok_or(CodecError::OldOutOfRange)?;
                out.extend_from_slice(src);
            }
            OP_DATA => {
                let f = payload.get(pos..pos + 4).ok_or(CodecError::Truncated)?;
                let len = u32::from_le_bytes([f[0], f[1], f[2], f[3]]) as usize;
                pos += 4;
                let bytes = payload.get(pos..pos + len).ok_or(CodecError::Truncated)?;
                out.extend_from_slice(bytes);
                pos += len;
            }
            _ => return Err(CodecError::BadFormat("unknown recipe op")),
        }
    }
    if out.len() != new_len {
        return Err(CodecError::LengthMismatch { declared: new_len, produced: out.len() });
    }
    Ok(out)
}

/// Parses a payload back into structured ops (diagnostics and tests).
///
/// Copies the payload into one shared buffer; the returned `Data` ops are
/// sub-views of it. Callers already holding the payload as [`Bytes`] should
/// use [`parse_shared`], which copies nothing.
pub fn parse(payload: &[u8]) -> Result<(usize, Vec<RecipeOp>), CodecError> {
    parse_shared(&Bytes::copy_from_slice(payload))
}

/// Zero-copy [`parse`]: every `Data` op is an O(1) refcounted slice of
/// `payload` — no literal bytes are copied out of the wire buffer.
pub fn parse_shared(payload: &Bytes) -> Result<(usize, Vec<RecipeOp>), CodecError> {
    if payload.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let new_len = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]) as usize;
    let mut ops = Vec::new();
    let mut pos = 4usize;
    let mut produced = 0usize;
    while produced < new_len {
        let op = *payload.get(pos).ok_or(CodecError::Truncated)?;
        pos += 1;
        match op {
            OP_COPY => {
                let f = payload.get(pos..pos + 8).ok_or(CodecError::Truncated)?;
                let old_offset = u32::from_le_bytes([f[0], f[1], f[2], f[3]]);
                let len = u32::from_le_bytes([f[4], f[5], f[6], f[7]]);
                pos += 8;
                produced += len as usize;
                ops.push(RecipeOp::Copy { old_offset, len });
            }
            OP_DATA => {
                let f = payload.get(pos..pos + 4).ok_or(CodecError::Truncated)?;
                let len = u32::from_le_bytes([f[0], f[1], f[2], f[3]]) as usize;
                pos += 4;
                if payload.len() < pos + len {
                    return Err(CodecError::Truncated);
                }
                ops.push(RecipeOp::Data(payload.slice(pos..pos + len)));
                pos += len;
                produced += len;
            }
            _ => return Err(CodecError::BadFormat("unknown recipe op")),
        }
    }
    Ok((new_len, ops))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_and_data_round_trip() {
        let old = b"0123456789abcdef";
        let ops = vec![
            RecipeOp::Copy { old_offset: 10, len: 6 },
            RecipeOp::Data(Bytes::from(&b"NEW"[..])),
            RecipeOp::Copy { old_offset: 0, len: 4 },
        ];
        let new_len = 6 + 3 + 4;
        let payload = encode(new_len, &ops);
        let out = apply(old, &payload).unwrap();
        assert_eq!(out, b"abcdefNEW0123");
        let (len, parsed) = parse(&payload).unwrap();
        assert_eq!(len, new_len);
        assert_eq!(parsed, ops);
    }

    #[test]
    fn empty_recipe() {
        let payload = encode(0, &[]);
        assert_eq!(apply(b"old", &payload).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn copy_out_of_old_range_rejected() {
        let ops = vec![RecipeOp::Copy { old_offset: 2, len: 10 }];
        let payload = encode(10, &ops);
        assert_eq!(apply(b"abc", &payload), Err(CodecError::OldOutOfRange));
    }

    #[test]
    fn copy_offset_overflow_rejected() {
        let ops = vec![RecipeOp::Copy { old_offset: u32::MAX, len: u32::MAX }];
        let payload = encode(u32::MAX as usize, &ops);
        assert_eq!(apply(b"abc", &payload), Err(CodecError::OldOutOfRange));
    }

    #[test]
    fn truncated_payloads_rejected() {
        let ops = vec![RecipeOp::Data(Bytes::from(&b"hello world"[..]))];
        let payload = encode(11, &ops);
        for cut in 0..payload.len() {
            assert!(apply(b"", &payload[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unknown_op_rejected() {
        let mut payload = 5u32.to_le_bytes().to_vec();
        payload.push(0x77);
        assert!(matches!(apply(b"", &payload), Err(CodecError::BadFormat(_))));
    }

    #[test]
    fn overrun_recipe_rejected() {
        // Recipe produces more than declared: apply stops only at >= so a
        // final op overshooting yields LengthMismatch.
        let ops = vec![RecipeOp::Data(Bytes::from(&b"abcdef"[..]))];
        let payload = encode(3, &ops);
        assert!(matches!(apply(b"", &payload), Err(CodecError::LengthMismatch { .. })));
    }

    #[test]
    fn output_and_wire_lens() {
        let c = RecipeOp::Copy { old_offset: 0, len: 100 };
        let d = RecipeOp::Data(Bytes::from(vec![0; 7]));
        assert_eq!(c.output_len(), 100);
        assert_eq!(c.wire_len(), 9);
        assert_eq!(d.output_len(), 7);
        assert_eq!(d.wire_len(), 12);
    }
}
