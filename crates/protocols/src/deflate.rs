//! DEFLATE-class compression: the LZ77 token stream entropy-coded with
//! canonical Huffman — what the paper's actual `gzip` tool does.
//!
//! This is the extension codec used by the entropy-stage ablation
//! (`ablate_entropy`): it quantifies what the missing Huffman stage of the
//! [`gzip`](crate::gzip) PAD would buy on the workload, at the price of a
//! bit-serial decoder that is much more expensive to run as mobile code.

use crate::traits::{CodecError, DiffCodec, ProtocolId};
use crate::{huffman, lz77};

/// LZ77 + Huffman, packaged as a codec. Reports itself as the Gzip
/// protocol (it is a drop-in upgrade of the same PAD function).
#[derive(Clone, Copy, Debug, Default)]
pub struct Deflate;

impl DiffCodec for Deflate {
    fn id(&self) -> ProtocolId {
        ProtocolId::Gzip
    }

    fn encode(&self, _old: &[u8], new: &[u8]) -> bytes::Bytes {
        huffman::compress(&lz77::compress(new)).into()
    }

    fn decode(&self, _old: &[u8], payload: &[u8]) -> Result<bytes::Bytes, CodecError> {
        lz77::decompress(&huffman::decompress(payload)?).map(Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let d = Deflate;
        let data = b"protocol adaptors packaged as mobile code ".repeat(300);
        let payload = d.encode(&[], &data);
        assert_eq!(d.decode(&[], &payload).unwrap(), data);
    }

    #[test]
    fn beats_plain_lz77_on_text() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(400);
        let plain = lz77::compress(&data).len();
        let full = Deflate.encode(&[], &data).len();
        assert!(full < plain, "entropy stage should shrink the token stream: {full} vs {plain}");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let d = Deflate;
        for data in [&b""[..], b"a", b"ab"] {
            let payload = d.encode(&[], data);
            assert_eq!(d.decode(&[], &payload).unwrap(), data);
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(Deflate.decode(&[], &[1, 2, 3]).is_err());
        let payload = Deflate.encode(&[], &b"x".repeat(5000));
        let cut = payload.slice(..payload.len() / 2);
        assert!(Deflate.decode(&[], &cut).is_err());
    }
}
