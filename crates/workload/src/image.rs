//! DICOM-like synthetic medical images.
//!
//! The paper's application server "holds four images of different 3D views"
//! per page — the computer-assisted-surgery workload of reference \[29\],
//! where the Bitmap protocol was shown to win on DICOM/BMP formats. The
//! key property: between versions, most pixels are *identical in place*
//! (small re-rendered regions), which fixed-position block diffing
//! exploits and content-shifting does not disturb.
//!
//! Images are 16-bit little-endian grayscale with a small DICOM-flavoured
//! header, rendered from a deterministic sum of Gaussian-ish blobs plus
//! quantized low-amplitude noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One rendered image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// 16-bit pixels, row-major.
    pub pixels: Vec<u16>,
}

impl Image {
    /// Renders an image of `width × height` from `n_blobs` soft blobs,
    /// deterministically from `seed`.
    pub fn render(seed: u64, width: usize, height: usize, n_blobs: usize) -> Image {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1357_9bdf_2468_ace0);
        let blobs: Vec<(f64, f64, f64, f64)> = (0..n_blobs)
            .map(|_| {
                (
                    rng.gen_range(0.0..width as f64),
                    rng.gen_range(0.0..height as f64),
                    rng.gen_range(
                        (width.min(height) as f64) * 0.05..(width.min(height) as f64) * 0.3,
                    ),
                    rng.gen_range(500.0..8000.0),
                )
            })
            .collect();
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                let mut v = 0.0f64;
                for &(bx, by, r, amp) in &blobs {
                    let dx = x as f64 - bx;
                    let dy = y as f64 - by;
                    let d2 = (dx * dx + dy * dy) / (r * r);
                    v += amp / (1.0 + d2);
                }
                // Coarse acquisition quantization (DICOM-style window
                // levelling) plus periodic sensor dither: gives the smooth
                // field byte-level plateaus so the serialized image
                // compresses ~2.5x under LZ77 (page-level ratio ~0.40), like real medical imagery.
                let quantized = (v / 64.0).round() * 64.0;
                let noise = ((x * 31 + y * 17) % 7) as f64;
                pixels.push((quantized + noise).min(65535.0) as u16);
            }
        }
        Image { width, height, pixels }
    }

    /// Re-renders a rectangular region with a different seed — a new "3D
    /// view angle" over part of the volume. Pixels outside the region stay
    /// byte-identical (the Bitmap-friendly edit).
    pub fn edit_region(&mut self, seed: u64, x0: usize, y0: usize, w: usize, h: usize) {
        let x1 = (x0 + w).min(self.width);
        let y1 = (y0 + h).min(self.height);
        let patch = Image::render(seed, x1.saturating_sub(x0), y1.saturating_sub(y0), 3);
        for (py, y) in (y0..y1).enumerate() {
            for (px, x) in (x0..x1).enumerate() {
                self.pixels[y * self.width + x] = patch.pixels[py * patch.width + px];
            }
        }
    }

    /// Serializes to the wire form: header + little-endian pixels.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.pixels.len() * 2);
        out.extend_from_slice(b"DICM"); // flavour marker
        out.extend_from_slice(&(self.width as u32).to_le_bytes());
        out.extend_from_slice(&(self.height as u32).to_le_bytes());
        out.extend_from_slice(&16u16.to_le_bytes()); // bits per pixel
        out.extend_from_slice(&1u16.to_le_bytes()); // samples per pixel
        for p in &self.pixels {
            out.extend_from_slice(&p.to_le_bytes());
        }
        out
    }

    /// Parses the wire form back (used in tests).
    pub fn from_bytes(bytes: &[u8]) -> Option<Image> {
        if bytes.len() < 16 || &bytes[..4] != b"DICM" {
            return None;
        }
        let width = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        let height = u32::from_le_bytes(bytes[8..12].try_into().ok()?) as usize;
        let body = &bytes[16..];
        if body.len() != width * height * 2 {
            return None;
        }
        let pixels = body.chunks_exact(2).map(|c| u16::from_le_bytes([c[0], c[1]])).collect();
        Some(Image { width, height, pixels })
    }

    /// Fraction of pixels differing from `other` (same dimensions assumed).
    pub fn diff_fraction(&self, other: &Image) -> f64 {
        let differing = self.pixels.iter().zip(&other.pixels).filter(|(a, b)| a != b).count();
        differing as f64 / self.pixels.len().max(1) as f64
    }
}

/// Renders the standard case-study image: ~32.5 KB (four per page ≈ 130 KB),
/// i.e. 127×128 16-bit pixels.
pub fn standard_view(seed: u64) -> Image {
    Image::render(seed, 127, 128, 6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_render() {
        let a = Image::render(7, 64, 64, 4);
        let b = Image::render(7, 64, 64, 4);
        assert_eq!(a, b);
        let c = Image::render(8, 64, 64, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn standard_view_size() {
        let img = standard_view(1);
        let bytes = img.to_bytes();
        // 4 such images ≈ 130 KB, per the paper.
        let four = bytes.len() * 4;
        assert!((120_000..140_000).contains(&four), "4 images = {four} bytes, want ≈130KB");
    }

    #[test]
    fn serialization_round_trip() {
        let img = Image::render(2, 33, 17, 3);
        assert_eq!(Image::from_bytes(&img.to_bytes()), Some(img));
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Image::from_bytes(b"nope").is_none());
        let mut bytes = Image::render(1, 8, 8, 1).to_bytes();
        bytes.truncate(bytes.len() - 2);
        assert!(Image::from_bytes(&bytes).is_none());
    }

    #[test]
    fn region_edit_is_localized() {
        let base = standard_view(3);
        let mut edited = base.clone();
        edited.edit_region(99, 10, 10, 30, 30);
        let frac = base.diff_fraction(&edited);
        // 30×30 of 127×128 ≈ 5.5%; allow some identical re-rendered pixels.
        assert!(frac > 0.01 && frac < 0.08, "diff fraction {frac}");
    }

    #[test]
    fn edit_region_clamps_to_bounds() {
        let mut img = Image::render(4, 20, 20, 2);
        img.edit_region(5, 15, 15, 100, 100); // overflows: clamps
        assert_eq!(img.pixels.len(), 400);
    }

    #[test]
    fn images_have_smooth_structure() {
        // Neighboring pixels should usually be close — the property that
        // makes these images unlike random noise.
        let img = standard_view(6);
        let mut close = 0usize;
        let mut total = 0usize;
        for y in 0..img.height {
            for x in 1..img.width {
                let a = img.pixels[y * img.width + x - 1] as i32;
                let b = img.pixels[y * img.width + x] as i32;
                if (a - b).abs() < 200 {
                    close += 1;
                }
                total += 1;
            }
        }
        assert!(close as f64 / total as f64 > 0.9);
    }
}
