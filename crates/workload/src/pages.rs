//! Web pages: 5 KB of markup plus four medical images (~130 KB), and
//! version chains produced by the mutation operators.

use crate::image::{standard_view, Image};
use crate::mutate::{mutate_images, mutate_text, EditProfile};
use crate::text;

/// One versioned web page.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Page {
    /// Page id within its set.
    pub id: u32,
    /// Version number (0 = original).
    pub version: u32,
    /// The markup part (~5 KB).
    pub text: Vec<u8>,
    /// The four image views.
    pub images: Vec<Image>,
}

impl Page {
    /// Serializes the page as delivered over the wire: text, then each
    /// image, each part length-prefixed.
    pub fn to_bytes(&self) -> Vec<u8> {
        let image_bytes: Vec<Vec<u8>> = self.images.iter().map(Image::to_bytes).collect();
        let total: usize =
            8 + self.text.len() + image_bytes.iter().map(|b| 4 + b.len()).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&(self.text.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.images.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.text);
        for b in &image_bytes {
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        out
    }

    /// Total serialized size.
    pub fn size(&self) -> usize {
        self.to_bytes().len()
    }
}

/// The experimental content set: `n` pages, each with a version chain.
#[derive(Clone, Debug)]
pub struct PageSet {
    seed: u64,
    n_pages: u32,
}

impl PageSet {
    /// The paper's configuration: 75 pages.
    pub fn paper(seed: u64) -> PageSet {
        PageSet { seed, n_pages: 75 }
    }

    /// A custom-sized set.
    pub fn new(seed: u64, n_pages: u32) -> PageSet {
        assert!(n_pages > 0);
        PageSet { seed, n_pages }
    }

    /// Number of pages.
    pub fn len(&self) -> u32 {
        self.n_pages
    }

    /// Whether the set is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Materializes version 0 of page `id`.
    pub fn original(&self, id: u32) -> Page {
        assert!(id < self.n_pages);
        let base = self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(id as u64);
        Page {
            id,
            version: 0,
            text: text::generate(base, 5 * 1024),
            images: (0..4).map(|i| standard_view(base.wrapping_add(1000 + i))).collect(),
        }
    }

    /// Materializes version `v` of page `id` by applying `profile`'s
    /// mutations `v` times. Deterministic: the same `(id, v)` always yields
    /// the same bytes.
    pub fn version(&self, id: u32, v: u32, profile: EditProfile) -> Page {
        let mut page = self.original(id);
        for step in 0..v {
            let step_seed = self
                .seed
                .wrapping_mul(0xD134_2543_DE82_EF95)
                .wrapping_add(((id as u64) << 20) | step as u64);
            page.text = mutate_text(&page.text, step_seed, profile);
            mutate_images(&mut page.images, step_seed, profile);
            page.version = step + 1;
        }
        page
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_sizes() {
        let set = PageSet::paper(42);
        assert_eq!(set.len(), 75);
        let sizes: Vec<usize> = (0..75).map(|i| set.original(i).size()).collect();
        let avg = sizes.iter().sum::<usize>() / sizes.len();
        // "average size of about 135KB"
        assert!((128_000..145_000).contains(&avg), "average page size {avg}, want ≈135KB");
    }

    #[test]
    fn pages_are_deterministic_and_distinct() {
        let set = PageSet::paper(7);
        assert_eq!(set.original(3), set.original(3));
        assert_ne!(set.original(3).to_bytes(), set.original(4).to_bytes());
        let other = PageSet::paper(8);
        assert_ne!(set.original(3).to_bytes(), other.original(3).to_bytes());
    }

    #[test]
    fn versions_are_deterministic() {
        let set = PageSet::new(9, 5);
        let a = set.version(2, 3, EditProfile::Localized);
        let b = set.version(2, 3, EditProfile::Localized);
        assert_eq!(a, b);
        assert_eq!(a.version, 3);
    }

    #[test]
    fn version_zero_is_original() {
        let set = PageSet::new(9, 5);
        assert_eq!(set.version(1, 0, EditProfile::Localized), set.original(1));
    }

    #[test]
    fn successive_versions_differ_but_not_completely() {
        let set = PageSet::new(10, 3);
        let v0 = set.original(0).to_bytes();
        let v1 = set.version(0, 1, EditProfile::Localized).to_bytes();
        assert_ne!(v0, v1);
        // Count identical bytes at identical offsets: localized edits keep
        // the bulk in place.
        let same = v0.iter().zip(&v1).filter(|(a, b)| a == b).count();
        assert!(
            same as f64 > v0.len().min(v1.len()) as f64 * 0.7,
            "only {same}/{} bytes preserved",
            v0.len()
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_page_panics() {
        PageSet::new(1, 2).original(5);
    }
}
