//! English-like markup generation with a Zipf word distribution.
//!
//! Real web text compresses ~3–5× under LZ77 because word frequencies are
//! heavy-tailed and markup repeats; uniform random bytes would make Gzip
//! look uselessly bad and skew every protocol comparison. This generator
//! reproduces both properties.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A compact medical-flavoured vocabulary; Zipf rank order.
const VOCAB: &[&str] = &[
    "the",
    "of",
    "and",
    "in",
    "to",
    "image",
    "patient",
    "scan",
    "view",
    "axial",
    "study",
    "series",
    "contrast",
    "left",
    "right",
    "region",
    "tissue",
    "normal",
    "lesion",
    "volume",
    "slice",
    "cranial",
    "report",
    "finding",
    "margin",
    "density",
    "signal",
    "lateral",
    "anterior",
    "posterior",
    "segment",
    "surgery",
    "guidance",
    "resolution",
    "protocol",
    "acquisition",
    "reconstruction",
    "ventricle",
    "hemisphere",
    "tumor",
    "biopsy",
    "catheter",
    "angiogram",
];

/// Generates roughly `target_bytes` of HTML-ish text, seeded.
pub fn generate(seed: u64, target_bytes: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7e87_a5d1_13b0_c4e2);
    let mut out = Vec::with_capacity(target_bytes + 128);
    out.extend_from_slice(b"<html><head><title>case report</title></head><body>\n");
    while out.len() < target_bytes {
        out.extend_from_slice(b"<p>");
        let sentence_words = rng.gen_range(8..20);
        for i in 0..sentence_words {
            if i > 0 {
                out.push(b' ');
            }
            out.extend_from_slice(zipf_word(&mut rng).as_bytes());
        }
        out.extend_from_slice(b".</p>\n");
    }
    out.extend_from_slice(b"</body></html>\n");
    out
}

/// Samples a word with probability ∝ 1/rank (Zipf, s = 1).
fn zipf_word(rng: &mut StdRng) -> &'static str {
    // Inverse-CDF over harmonic weights, precomputed lazily per call is
    // cheap at this vocab size.
    let h: f64 = (1..=VOCAB.len()).map(|r| 1.0 / r as f64).sum();
    let mut u = rng.gen_range(0.0..h);
    for (i, w) in VOCAB.iter().enumerate() {
        u -= 1.0 / (i + 1) as f64;
        if u <= 0.0 {
            return w;
        }
    }
    VOCAB[VOCAB.len() - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(generate(1, 5000), generate(1, 5000));
        assert_ne!(generate(1, 5000), generate(2, 5000));
    }

    #[test]
    fn respects_target_size_roughly() {
        let t = generate(3, 5000);
        assert!(t.len() >= 5000 && t.len() < 5400, "got {}", t.len());
    }

    #[test]
    fn looks_like_markup() {
        let t = generate(4, 2000);
        let s = String::from_utf8(t).unwrap();
        assert!(s.starts_with("<html>"));
        assert!(s.ends_with("</html>\n"));
        assert!(s.contains("<p>"));
    }

    #[test]
    fn zipf_head_dominates() {
        let t = generate(5, 50_000);
        let s = String::from_utf8(t).unwrap();
        let the = s.matches(" the ").count() + s.matches(">the ").count();
        let tumor = s.matches(" tumor").count();
        assert!(the > tumor * 3, "the={the} tumor={tumor}");
    }
}
