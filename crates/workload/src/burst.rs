//! Self-similar bursty arrival schedules.
//!
//! The generator is a **beta-multiplier multiplicative cascade** over a
//! dyadic tree — the construction used by multifractal wavelet traffic
//! models: start with the total arrival mass at the root, and at every
//! node split the mass between the two children with a random multiplier
//! `m` / `1 - m`. After `levels` splits the leaves form `2^levels` time
//! slots whose masses exhibit the burstiness of the cascade: long-range
//! dependent, self-similar clumping rather than uniform spread.
//!
//! The multiplier is the two-point "beta" distribution: `m = 0.5 +
//! spread/2`, with the heavy side chosen by one bit of a seeded
//! xorshift64 stream. `spread = 0` degenerates to a perfectly uniform
//! schedule; `spread → 1` concentrates nearly all arrivals in a few
//! slots. Everything is integer-exact downstream: masses are converted
//! to per-slot counts by largest-remainder rounding, so
//! `counts(total).sum() == total` always.

/// A deterministic beta-multiplier cascade over `2^levels` time slots.
#[derive(Clone, Copy, Debug)]
pub struct BurstCascade {
    seed: u64,
    levels: u32,
    spread: f64,
}

fn xorshift64(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

impl BurstCascade {
    /// Creates a cascade. `levels` is the dyadic depth (`2^levels`
    /// slots, capped at 20); `spread` in `[0, 1]` sets how uneven each
    /// split is (`0` = uniform, `1` = maximally bursty).
    pub fn new(seed: u64, levels: u32, spread: f64) -> BurstCascade {
        assert!(levels <= 20, "cascade depth {levels} too deep");
        assert!((0.0..=1.0).contains(&spread), "spread {spread} outside [0, 1]");
        // xorshift has a fixed point at zero; displace it deterministically.
        let seed = if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed };
        BurstCascade { seed, levels, spread }
    }

    /// Number of time slots (`2^levels`).
    pub fn slots(&self) -> usize {
        1usize << self.levels
    }

    /// The leaf mass fractions, in slot order. Sums to 1 (up to float
    /// rounding); every fraction is in `(0, 1]`.
    pub fn weights(&self) -> Vec<f64> {
        let mut s = self.seed;
        let heavy = 0.5 + self.spread / 2.0;
        let mut w = vec![1.0f64];
        for _ in 0..self.levels {
            let mut next = Vec::with_capacity(w.len() * 2);
            for parent in w {
                let left = if xorshift64(&mut s) & 1 == 0 { heavy } else { 1.0 - heavy };
                next.push(parent * left);
                next.push(parent * (1.0 - left));
            }
            w = next;
        }
        w
    }

    /// Distributes `total` arrivals over the slots by largest-remainder
    /// rounding of the cascade weights. The counts always sum to
    /// exactly `total`.
    pub fn counts(&self, total: usize) -> Vec<usize> {
        let w = self.weights();
        let mut counts: Vec<usize> = Vec::with_capacity(w.len());
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(w.len());
        let mut assigned = 0usize;
        for (i, wi) in w.iter().enumerate() {
            let exact = wi * total as f64;
            let floor = exact.floor() as usize;
            counts.push(floor);
            assigned += floor;
            remainders.push((i, exact - floor as f64));
        }
        // Hand the leftover arrivals to the largest fractional parts;
        // ties break by slot index so the result is deterministic.
        remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        for (i, _) in remainders.iter().take(total - assigned) {
            counts[*i] += 1;
        }
        counts
    }

    /// Expands the schedule into sorted arrival offsets (µs from start)
    /// across a horizon of `horizon_us`. Arrivals inside one slot are
    /// spread evenly; burstiness lives between slots.
    pub fn offsets_us(&self, total: usize, horizon_us: u64) -> Vec<u64> {
        let counts = self.counts(total);
        let slots = counts.len() as u64;
        let mut out = Vec::with_capacity(total);
        for (slot, count) in counts.into_iter().enumerate() {
            let start = slot as u64 * horizon_us / slots;
            let width = (slot as u64 + 1) * horizon_us / slots - start;
            for j in 0..count as u64 {
                out.push(start + j * width / count.max(1) as u64);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = BurstCascade::new(42, 8, 0.6);
        let b = BurstCascade::new(42, 8, 0.6);
        assert_eq!(a.counts(10_000), b.counts(10_000));
        assert_eq!(a.offsets_us(1_000, 1_000_000), b.offsets_us(1_000, 1_000_000));
    }

    #[test]
    fn counts_conserve_mass() {
        for total in [0usize, 1, 7, 100, 9_999] {
            let c = BurstCascade::new(3, 6, 0.8);
            assert_eq!(c.counts(total).iter().sum::<usize>(), total);
        }
    }

    #[test]
    fn zero_spread_is_uniform() {
        let c = BurstCascade::new(11, 5, 0.0);
        let counts = c.counts(32 * 10);
        assert!(counts.iter().all(|&n| n == 10), "{counts:?}");
    }

    #[test]
    fn high_spread_is_bursty() {
        let c = BurstCascade::new(7, 8, 0.9);
        let counts = c.counts(10_000);
        let peak = *counts.iter().max().unwrap();
        let mean = 10_000 / counts.len();
        assert!(peak > 10 * mean, "peak {peak} vs mean {mean}");
        // ...while a uniform schedule would have no empty slots at all.
        assert!(counts.iter().filter(|&&n| n == 0).count() > counts.len() / 4);
    }

    #[test]
    fn different_seeds_differ() {
        let a = BurstCascade::new(1, 8, 0.6).counts(10_000);
        let b = BurstCascade::new(2, 8, 0.6).counts(10_000);
        assert_ne!(a, b);
    }

    #[test]
    fn offsets_sorted_within_horizon() {
        let offs = BurstCascade::new(5, 7, 0.7).offsets_us(5_000, 2_000_000);
        assert_eq!(offs.len(), 5_000);
        assert!(offs.windows(2).all(|w| w[0] <= w[1]));
        assert!(offs.iter().all(|&t| t < 2_000_000));
    }
}
