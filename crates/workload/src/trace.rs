//! Request traces: which page each client asks for, and which version it
//! already holds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One client request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Request {
    /// Requesting client index in the population.
    pub client: u32,
    /// Page requested.
    pub page: u32,
    /// Version the client already caches (`None` = cold fetch).
    pub have_version: Option<u32>,
    /// Version the server currently publishes.
    pub want_version: u32,
}

/// A deterministic trace generator.
#[derive(Clone, Debug)]
pub struct Trace {
    seed: u64,
    n_pages: u32,
    /// Probability a client already holds the previous version.
    warm_fraction: f64,
}

impl Trace {
    /// Creates a trace over `n_pages` with the given warm-cache fraction.
    pub fn new(seed: u64, n_pages: u32, warm_fraction: f64) -> Trace {
        assert!((0.0..=1.0).contains(&warm_fraction));
        assert!(n_pages > 0);
        Trace { seed, n_pages, warm_fraction }
    }

    /// The paper's session model: every client re-fetches a page it has
    /// seen before (warm_fraction = 1.0): the differencing protocols'
    /// target scenario.
    pub fn warm(seed: u64, n_pages: u32) -> Trace {
        Trace::new(seed, n_pages, 1.0)
    }

    /// Generates `n` requests for `clients` clients. Pages are chosen
    /// uniformly; warm requests hold `want_version - 1`.
    pub fn generate(&self, clients: u32, n: usize) -> Vec<Request> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xFEED_FACE_DEAD_BEEF);
        (0..n)
            .map(|_| {
                let client = rng.gen_range(0..clients.max(1));
                let page = rng.gen_range(0..self.n_pages);
                let want_version = rng.gen_range(1..4);
                let warm = rng.gen_bool(self.warm_fraction);
                Request { client, page, have_version: warm.then(|| want_version - 1), want_version }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let t = Trace::new(1, 75, 0.5);
        assert_eq!(t.generate(10, 100), t.generate(10, 100));
    }

    #[test]
    fn warm_trace_always_has_old_version() {
        let t = Trace::warm(2, 75);
        for r in t.generate(10, 200) {
            let have = r.have_version.expect("warm trace");
            assert_eq!(have, r.want_version - 1);
        }
    }

    #[test]
    fn cold_trace_never_has_old_version() {
        let t = Trace::new(3, 75, 0.0);
        assert!(t.generate(10, 200).iter().all(|r| r.have_version.is_none()));
    }

    #[test]
    fn pages_and_clients_in_range() {
        let t = Trace::new(4, 10, 0.5);
        for r in t.generate(7, 500) {
            assert!(r.page < 10);
            assert!(r.client < 7);
            assert!(r.want_version >= 1);
        }
    }

    #[test]
    fn mixed_fraction_is_mixed() {
        let t = Trace::new(5, 75, 0.5);
        let reqs = t.generate(10, 400);
        let warm = reqs.iter().filter(|r| r.have_version.is_some()).count();
        assert!(warm > 100 && warm < 300, "warm count {warm}");
    }
}
