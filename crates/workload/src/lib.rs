//! # fractal-workload
//!
//! Deterministic synthetic workload matching the paper's experimental
//! content (§4.2): "a set of 75 Web pages with the average size of about
//! 135KB consisting of 5KB text and four images totalling about 130KB,
//! which is inspired by a typical example of a medical application server
//! that holds four images of different 3D views".
//!
//! * [`text`] — Zipf-distributed English-like markup (compressible, the
//!   regime where Gzip shines);
//! * [`image`] — DICOM-like 16-bit grayscale renderings of a smooth 3-D
//!   field (the medical-imaging workload of reference \[29\]);
//! * [`burst`] — self-similar bursty arrival schedules (beta-multiplier
//!   multiplicative cascade over a dyadic tree);
//! * [`mutate`] — version evolution: *in-place* pixel edits (Bitmap's best
//!   case), *insertions/deletions* in text (vary-sized blocking's best
//!   case), and fresh-content churn (Gzip/Direct's case);
//! * [`pages`] — assembling pages and version chains;
//! * [`trace`] — request traces over a client population.
//!
//! Everything is seeded and reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burst;
pub mod image;
pub mod mutate;
pub mod pages;
pub mod text;
pub mod trace;

pub use burst::BurstCascade;
pub use pages::{Page, PageSet};
pub use trace::{Request, Trace};
