//! Version-evolution operators.
//!
//! The paper's core empirical observation (\[30\]) is that *which* protocol
//! wins depends on document type and how documents change. Three edit
//! profiles span that space:
//!
//! * [`EditProfile::Localized`] — re-render small image regions in place
//!   and replace a sentence in the text without changing its length where
//!   possible. Positionally stable → Bitmap's best case.
//! * [`EditProfile::Shifting`] — insert/delete text runs, shifting all
//!   later bytes. Content-defined chunking (vary-sized) and rolling
//!   checksums (fixed-block) survive this; Bitmap does not.
//! * [`EditProfile::Churn`] — regenerate most of the content. No version
//!   correlation → compression (Gzip) or Direct wins.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::image::Image;
use crate::text;

/// How one version evolves into the next.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EditProfile {
    /// In-place localized edits (medical re-rendering).
    Localized,
    /// Insertions and deletions that shift content.
    Shifting,
    /// Near-total regeneration.
    Churn,
}

impl EditProfile {
    /// All profiles, for sweeps.
    pub const ALL: [EditProfile; 3] =
        [EditProfile::Localized, EditProfile::Shifting, EditProfile::Churn];

    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            EditProfile::Localized => "localized",
            EditProfile::Shifting => "shifting",
            EditProfile::Churn => "churn",
        }
    }
}

/// Evolves the markup once.
pub fn mutate_text(old: &[u8], seed: u64, profile: EditProfile) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_0F0F_F0F0);
    match profile {
        EditProfile::Localized => {
            // Overwrite one span in place with same-length fresh text.
            let mut out = old.to_vec();
            if out.len() > 64 {
                let span = rng.gen_range(16..48.min(out.len() / 2));
                let at = rng.gen_range(0..out.len() - span);
                let fresh = text::generate(seed.wrapping_add(1), span + 64);
                out[at..at + span].copy_from_slice(&fresh[64..64 + span]);
            }
            out
        }
        EditProfile::Shifting => {
            // Insert a fresh sentence at a random point and delete a small
            // run elsewhere.
            let mut out = old.to_vec();
            let fresh = text::generate(seed.wrapping_add(2), 160);
            let insert_at = rng.gen_range(0..=out.len());
            let sentence = &fresh[52..fresh.len().min(52 + rng.gen_range(40usize..120))];
            out.splice(insert_at..insert_at, sentence.iter().copied());
            if out.len() > 400 {
                let del = rng.gen_range(10usize..80);
                let at = rng.gen_range(0..out.len() - del);
                out.drain(at..at + del);
            }
            out
        }
        EditProfile::Churn => text::generate(seed.wrapping_add(3), old.len().max(512)),
    }
}

/// Evolves the image set once.
pub fn mutate_images(images: &mut [Image], seed: u64, profile: EditProfile) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0BAD_F00D_CAFE_D00D);
    match profile {
        EditProfile::Localized => {
            // Re-render one region of one or two views in place.
            let n_edits = rng.gen_range(1..=2.min(images.len()));
            for _ in 0..n_edits {
                let idx = rng.gen_range(0..images.len());
                let img = &mut images[idx];
                let w = rng.gen_range(img.width / 8..img.width / 3);
                let h = rng.gen_range(img.height / 8..img.height / 3);
                let x0 = rng.gen_range(0..img.width - w);
                let y0 = rng.gen_range(0..img.height - h);
                img.edit_region(seed.wrapping_add(idx as u64), x0, y0, w, h);
            }
        }
        EditProfile::Shifting => {
            // Images keep their content (text shifted around them); touch
            // a thin strip of one view.
            if let Some(img) = images.first_mut() {
                let h = (img.height / 16).max(1);
                img.edit_region(seed, 0, 0, img.width, h);
            }
        }
        EditProfile::Churn => {
            // Fully new renders.
            for (i, img) in images.iter_mut().enumerate() {
                *img = Image::render(seed.wrapping_add(5000 + i as u64), img.width, img.height, 6);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::standard_view;

    #[test]
    fn localized_text_preserves_length() {
        let old = text::generate(1, 5000);
        let new = mutate_text(&old, 2, EditProfile::Localized);
        assert_eq!(old.len(), new.len());
        assert_ne!(old, new);
        let same = old.iter().zip(&new).filter(|(a, b)| a == b).count();
        assert!(same > old.len() * 9 / 10);
    }

    #[test]
    fn shifting_text_changes_length() {
        let old = text::generate(3, 5000);
        let new = mutate_text(&old, 4, EditProfile::Shifting);
        assert_ne!(old.len(), new.len());
    }

    #[test]
    fn churn_text_is_unrelated() {
        let old = text::generate(5, 5000);
        let new = mutate_text(&old, 6, EditProfile::Churn);
        let same = old.iter().zip(&new).filter(|(a, b)| a == b).count();
        assert!(same < old.len() / 2, "churned text too similar: {same}");
    }

    #[test]
    fn localized_images_mostly_unchanged() {
        let mut images: Vec<Image> = (0..4).map(standard_view).collect();
        let before = images.clone();
        mutate_images(&mut images, 7, EditProfile::Localized);
        let total_diff: f64 =
            images.iter().zip(&before).map(|(a, b)| a.diff_fraction(b)).sum::<f64>()
                / images.len() as f64;
        assert!(total_diff > 0.0 && total_diff < 0.15, "diff {total_diff}");
    }

    #[test]
    fn churn_images_fully_changed() {
        let mut images: Vec<Image> = (0..4).map(standard_view).collect();
        let before = images.clone();
        mutate_images(&mut images, 8, EditProfile::Churn);
        for (a, b) in images.iter().zip(&before) {
            assert!(a.diff_fraction(b) > 0.5);
        }
    }

    #[test]
    fn mutations_are_deterministic() {
        let old = text::generate(9, 3000);
        for p in EditProfile::ALL {
            assert_eq!(mutate_text(&old, 10, p), mutate_text(&old, 10, p));
        }
    }

    #[test]
    fn profile_names() {
        let names: Vec<_> = EditProfile::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["localized", "shifting", "churn"]);
    }
}
