//! # fractal-cdn
//!
//! The content-distribution-network substrate: what stands in for the
//! paper's PlanetLab-emulated CDN (§4.2) and its centralized comparison
//! server.
//!
//! Fractal "leverages existing content distribution networks for protocol
//! adaptor deployment" (§1): PADs are content-addressed web objects pushed
//! from an [`origin`] store to [`edge`] servers; clients are routed to the
//! closest edge (`Topology::closest`), which serves from its LRU cache and
//! fetches from the origin on a miss.
//!
//! [`deployment`] assembles either topology — one **centralized** PAD
//! server, or **distributed** edges — and simulates batch retrieval under
//! load with exact processor-sharing of each server's egress pipe. This is
//! the machinery behind Figure 9(b): the centralized curve climbs with
//! client count while the distributed curve stays flat.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deployment;
pub mod edge;
pub mod origin;
pub mod stats;

pub use deployment::{Deployment, RetrievalRequest};
pub use edge::{EdgeServer, LruCache};
pub use origin::{OriginStore, PadObject};
pub use stats::RetrievalStats;
