//! The origin store: the application server's authoritative, content-
//! addressed repository of PAD objects.
//!
//! "We assume the application server has already deployed all PADs in
//! advance" (§3.1). The origin is where edge servers fetch on a cache miss,
//! and the source of truth for digests.

use std::collections::HashMap;

use bytes::Bytes;
use fractal_crypto::sha1::sha1;
use fractal_crypto::Digest;

/// A content-addressed PAD object as stored and served by the CDN.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PadObject {
    /// SHA-1 of the bytes (the CDN's content address and `PADMeta`'s
    /// integrity digest).
    pub digest: Digest,
    /// The signed-module wire bytes.
    pub bytes: Bytes,
}

impl PadObject {
    /// Wraps raw wire bytes, computing the content address.
    pub fn new(bytes: impl Into<Bytes>) -> PadObject {
        let bytes = bytes.into();
        PadObject { digest: sha1(&bytes), bytes }
    }

    /// Object size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }
}

/// The authoritative object store at the application server.
#[derive(Clone, Debug, Default)]
pub struct OriginStore {
    objects: HashMap<Digest, PadObject>,
}

impl OriginStore {
    /// Creates an empty store.
    pub fn new() -> OriginStore {
        OriginStore::default()
    }

    /// Publishes an object, returning its content address.
    pub fn publish(&mut self, bytes: impl Into<Bytes>) -> Digest {
        let obj = PadObject::new(bytes);
        let digest = obj.digest;
        self.objects.insert(digest, obj);
        digest
    }

    /// Fetches by content address.
    pub fn fetch(&self, digest: &Digest) -> Option<PadObject> {
        self.objects.get(digest).cloned()
    }

    /// Whether the store holds `digest`.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.objects.contains_key(digest)
    }

    /// Number of published objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// All published digests (sorted for determinism).
    pub fn digests(&self) -> Vec<Digest> {
        let mut v: Vec<Digest> = self.objects.keys().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_fetch() {
        let mut store = OriginStore::new();
        let d = store.publish(&b"pad bytes"[..]);
        let obj = store.fetch(&d).unwrap();
        assert_eq!(&obj.bytes[..], b"pad bytes");
        assert_eq!(obj.digest, d);
        assert_eq!(obj.size(), 9);
    }

    #[test]
    fn content_addressing_is_deterministic() {
        let mut a = OriginStore::new();
        let mut b = OriginStore::new();
        assert_eq!(a.publish(&b"x"[..]), b.publish(&b"x"[..]));
        assert_ne!(a.publish(&b"y"[..]), a.publish(&b"z"[..]));
    }

    #[test]
    fn republish_same_bytes_is_idempotent() {
        let mut store = OriginStore::new();
        let d1 = store.publish(&b"same"[..]);
        let d2 = store.publish(&b"same"[..]);
        assert_eq!(d1, d2);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn missing_digest() {
        let store = OriginStore::new();
        assert!(store.fetch(&Digest::ZERO).is_none());
        assert!(!store.contains(&Digest::ZERO));
        assert!(store.is_empty());
    }

    #[test]
    fn digests_sorted() {
        let mut store = OriginStore::new();
        store.publish(&b"a"[..]);
        store.publish(&b"b"[..]);
        store.publish(&b"c"[..]);
        let ds = store.digests();
        assert_eq!(ds.len(), 3);
        assert!(ds.windows(2).all(|w| w[0] < w[1]));
    }
}
