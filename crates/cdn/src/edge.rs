//! Edge servers: byte-budgeted LRU caches with an egress pipe and a
//! position in the topology.

use std::collections::HashMap;

use fractal_crypto::Digest;
use fractal_net::topology::NodeId;
use parking_lot::Mutex;

use crate::origin::{OriginStore, PadObject};

/// A byte-budgeted LRU cache of PAD objects.
#[derive(Debug)]
pub struct LruCache {
    capacity_bytes: u64,
    used_bytes: u64,
    objects: HashMap<Digest, PadObject>,
    /// Recency order: front = least recently used.
    order: Vec<Digest>,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// Creates a cache with a byte budget.
    pub fn new(capacity_bytes: u64) -> LruCache {
        LruCache {
            capacity_bytes,
            used_bytes: 0,
            objects: HashMap::new(),
            order: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `digest`, refreshing recency. Counts a hit or miss.
    pub fn get(&mut self, digest: &Digest) -> Option<PadObject> {
        match self.objects.get(digest) {
            Some(obj) => {
                let obj = obj.clone();
                self.touch(digest);
                self.hits += 1;
                Some(obj)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts an object, evicting LRU entries to fit. Objects larger than
    /// the whole budget are not cached.
    pub fn insert(&mut self, obj: PadObject) {
        if obj.size() > self.capacity_bytes {
            return;
        }
        if let Some(prev) = self.objects.remove(&obj.digest) {
            self.used_bytes -= prev.size();
            self.order.retain(|d| d != &obj.digest);
        }
        while self.used_bytes + obj.size() > self.capacity_bytes {
            let victim = self.order.remove(0);
            let evicted = self.objects.remove(&victim).expect("order tracks objects");
            self.used_bytes -= evicted.size();
        }
        self.used_bytes += obj.size();
        self.order.push(obj.digest);
        self.objects.insert(obj.digest, obj);
    }

    fn touch(&mut self, digest: &Digest) {
        if let Some(idx) = self.order.iter().position(|d| d == digest) {
            let d = self.order.remove(idx);
            self.order.push(d);
        }
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// One CDN edge server.
#[derive(Debug)]
pub struct EdgeServer {
    /// Where the edge sits in the topology.
    pub node: NodeId,
    /// Egress capacity in bytes per second, shared by concurrent downloads.
    pub egress_bytes_per_sec: f64,
    cache: Mutex<LruCache>,
}

impl EdgeServer {
    /// Creates an edge server at `node` with the given egress capacity and
    /// cache budget.
    pub fn new(node: NodeId, egress_bytes_per_sec: f64, cache_bytes: u64) -> EdgeServer {
        EdgeServer { node, egress_bytes_per_sec, cache: Mutex::new(LruCache::new(cache_bytes)) }
    }

    /// Serves `digest`: cache hit returns the object directly; a miss
    /// fetches from the origin, fills the cache, and reports `was_miss` so
    /// the caller can charge the origin round trip.
    pub fn serve(&self, digest: &Digest, origin: &OriginStore) -> Option<(PadObject, bool)> {
        if let Some(obj) = self.cache.lock().get(digest) {
            return Some((obj, false));
        }
        let obj = origin.fetch(digest)?;
        self.cache.lock().insert(obj.clone());
        Some((obj, true))
    }

    /// Pre-populates the cache (the paper pushes PADs to edges in advance).
    pub fn warm(&self, origin: &OriginStore, digests: &[Digest]) {
        let mut cache = self.cache.lock();
        for d in digests {
            if let Some(obj) = origin.fetch(d) {
                cache.insert(obj);
            }
        }
    }

    /// Cache hit/miss counters.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.lock().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(byte: u8, len: usize) -> PadObject {
        PadObject::new(vec![byte; len])
    }

    #[test]
    fn lru_insert_and_get() {
        let mut c = LruCache::new(100);
        let o = obj(1, 10);
        let d = o.digest;
        c.insert(o.clone());
        assert_eq!(c.get(&d), Some(o));
        assert_eq!(c.stats(), (1, 0));
        assert_eq!(c.used_bytes(), 10);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(25);
        let a = obj(1, 10);
        let b = obj(2, 10);
        let x = obj(3, 10);
        let (da, db, dx) = (a.digest, b.digest, x.digest);
        c.insert(a);
        c.insert(b);
        // Touch a so b becomes LRU.
        assert!(c.get(&da).is_some());
        c.insert(x); // must evict b
        assert!(c.get(&da).is_some());
        assert!(c.get(&db).is_none());
        assert!(c.get(&dx).is_some());
        assert!(c.used_bytes() <= 25);
    }

    #[test]
    fn lru_rejects_oversized() {
        let mut c = LruCache::new(5);
        let big = obj(1, 10);
        let d = big.digest;
        c.insert(big);
        assert!(c.get(&d).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn lru_reinsert_same_object() {
        let mut c = LruCache::new(100);
        c.insert(obj(1, 10));
        c.insert(obj(1, 10));
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 10);
    }

    #[test]
    fn edge_serves_with_miss_then_hit() {
        let mut origin = OriginStore::new();
        let d = origin.publish(vec![7u8; 100]);
        let edge = EdgeServer::new(NodeId(0), 1e6, 1000);
        let (o1, miss1) = edge.serve(&d, &origin).unwrap();
        assert!(miss1);
        assert_eq!(o1.size(), 100);
        let (_, miss2) = edge.serve(&d, &origin).unwrap();
        assert!(!miss2);
        assert_eq!(edge.cache_stats(), (1, 1));
    }

    #[test]
    fn edge_warm_prefills() {
        let mut origin = OriginStore::new();
        let d = origin.publish(vec![7u8; 100]);
        let edge = EdgeServer::new(NodeId(0), 1e6, 1000);
        edge.warm(&origin, &[d]);
        let (_, miss) = edge.serve(&d, &origin).unwrap();
        assert!(!miss, "warmed object must hit");
    }

    #[test]
    fn edge_unknown_object() {
        let origin = OriginStore::new();
        let edge = EdgeServer::new(NodeId(0), 1e6, 1000);
        assert!(edge.serve(&Digest::ZERO, &origin).is_none());
    }
}
