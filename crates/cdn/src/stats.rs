//! Summary statistics for retrieval experiments.

use fractal_net::time::SimDuration;

/// Aggregates of a batch of retrieval durations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetrievalStats {
    /// Number of samples.
    pub count: usize,
    /// Mean duration.
    pub mean: SimDuration,
    /// Minimum duration.
    pub min: SimDuration,
    /// Maximum duration.
    pub max: SimDuration,
    /// Median (p50).
    pub p50: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
}

impl RetrievalStats {
    /// Computes stats over a batch; returns `None` for an empty batch.
    pub fn compute(durations: &[SimDuration]) -> Option<RetrievalStats> {
        if durations.is_empty() {
            return None;
        }
        let mut sorted: Vec<u64> = durations.iter().map(|d| d.as_micros()).collect();
        sorted.sort_unstable();
        let count = sorted.len();
        let total: u64 = sorted.iter().sum();
        let pct = |p: f64| -> SimDuration {
            let idx = ((count - 1) as f64 * p).round() as usize;
            SimDuration::micros(sorted[idx])
        };
        Some(RetrievalStats {
            count,
            mean: SimDuration::micros(total / count as u64),
            min: SimDuration::micros(sorted[0]),
            max: SimDuration::micros(sorted[count - 1]),
            p50: pct(0.5),
            p95: pct(0.95),
        })
    }
}

impl core::fmt::Display for RetrievalStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "n={} mean={} min={} p50={} p95={} max={}",
            self.count, self.mean, self.min, self.p50, self.p95, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(RetrievalStats::compute(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = RetrievalStats::compute(&[SimDuration::micros(100)]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, SimDuration::micros(100));
        assert_eq!(s.min, s.max);
        assert_eq!(s.p50, s.p95);
    }

    #[test]
    fn percentiles_ordered() {
        let ds: Vec<SimDuration> = (1..=100).map(SimDuration::micros).collect();
        let s = RetrievalStats::compute(&ds).unwrap();
        assert_eq!(s.min, SimDuration::micros(1));
        assert_eq!(s.max, SimDuration::micros(100));
        assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.max);
        assert_eq!(s.mean, SimDuration::micros(50)); // (5050/100) = 50.5 → 50 integer div
    }

    #[test]
    fn unsorted_input_handled() {
        let ds = vec![SimDuration::micros(30), SimDuration::micros(10), SimDuration::micros(20)];
        let s = RetrievalStats::compute(&ds).unwrap();
        assert_eq!(s.min, SimDuration::micros(10));
        assert_eq!(s.p50, SimDuration::micros(20));
        assert_eq!(s.max, SimDuration::micros(30));
    }
}
