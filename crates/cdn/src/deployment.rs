//! Centralized vs. distributed PAD-server deployments and the batch
//! retrieval simulation behind Figure 9(b).
//!
//! "We set up a centralized PAD server which holds all the PADs for the
//! purpose of performance comparisons between centralized and distributed
//! PAD servers" (§4.2). A [`Deployment`] is either that one server or a set
//! of edge servers with closest-edge routing; [`Deployment::retrieve_batch`]
//! computes per-client retrieval times when all clients download
//! simultaneously, sharing each server's egress pipe.

use fractal_crypto::Digest;
use fractal_net::link::Link;
use fractal_net::queue::{SharedPipe, Transfer};
use fractal_net::time::{SimDuration, SimTime};
use fractal_net::topology::{NodeId, Topology};

use crate::edge::EdgeServer;
use crate::origin::OriginStore;

/// One client's PAD download request.
#[derive(Clone, Debug)]
pub struct RetrievalRequest {
    /// Where the client sits in the topology.
    pub client_node: NodeId,
    /// The client's last-mile link (bounds its download rate).
    pub last_mile: Link,
    /// Content address to fetch.
    pub digest: Digest,
    /// When the download starts.
    pub start: SimTime,
}

/// A PAD-serving deployment.
pub enum Deployment {
    /// One PAD server holds everything; every client hits it.
    Centralized {
        /// The server's topology position.
        node: NodeId,
        /// Server egress in bytes/second.
        egress_bytes_per_sec: f64,
    },
    /// CDN edge servers with closest-edge routing.
    Distributed {
        /// The edges.
        edges: Vec<EdgeServer>,
    },
}

impl Deployment {
    /// Human-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Deployment::Centralized { .. } => "centralized",
            Deployment::Distributed { .. } => "distributed",
        }
    }

    /// Routes a request to the serving node.
    pub fn route(&self, topo: &Topology, client: NodeId) -> NodeId {
        match self {
            Deployment::Centralized { node, .. } => *node,
            Deployment::Distributed { edges } => {
                let nodes: Vec<NodeId> = edges.iter().map(|e| e.node).collect();
                topo.closest(client, &nodes).expect("deployment has ≥1 edge")
            }
        }
    }

    /// Simulates a batch of simultaneous downloads. Returns per-request
    /// retrieval durations (aligned with `requests`).
    ///
    /// Model per request: wide-area RTT to the serving node, an origin
    /// fetch penalty when a distributed edge misses its cache, then a
    /// download bounded by *both* the server's shared egress pipe and the
    /// client's own last-mile goodput (the slower governs).
    pub fn retrieve_batch(
        &self,
        topo: &Topology,
        origin: &OriginStore,
        requests: &[RetrievalRequest],
    ) -> Vec<SimDuration> {
        // Group request indices per serving node.
        let mut groups: Vec<(NodeId, Vec<usize>)> = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            let server = self.route(topo, req.client_node);
            match groups.iter_mut().find(|(n, _)| *n == server) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((server, vec![i])),
            }
        }

        let mut results = vec![SimDuration::ZERO; requests.len()];
        for (server_node, idxs) in groups {
            // Resolve object sizes (and miss penalties for edges).
            let mut sizes = Vec::with_capacity(idxs.len());
            let mut penalties = Vec::with_capacity(idxs.len());
            let egress = match self {
                Deployment::Centralized { egress_bytes_per_sec, .. } => *egress_bytes_per_sec,
                Deployment::Distributed { edges } => {
                    edges
                        .iter()
                        .find(|e| e.node == server_node)
                        .expect("routed edge")
                        .egress_bytes_per_sec
                }
            };
            for &i in &idxs {
                let req = &requests[i];
                let (size, miss) = match self {
                    Deployment::Centralized { .. } => {
                        let obj = origin.fetch(&req.digest).expect("origin holds all PADs");
                        (obj.size(), false)
                    }
                    Deployment::Distributed { edges } => {
                        let edge =
                            edges.iter().find(|e| e.node == server_node).expect("routed edge");
                        let (obj, miss) =
                            edge.serve(&req.digest, origin).expect("origin holds all PADs");
                        (obj.size(), miss)
                    }
                };
                sizes.push(size);
                // Miss penalty: one origin round trip plus refetch at the
                // modeled origin path rate (we charge 2× the edge RTT as a
                // simple wide-area fetch estimate).
                let penalty = if miss {
                    topo.latency(server_node, NodeId(0)).scale(2.0)
                } else {
                    SimDuration::ZERO
                };
                penalties.push(penalty);
            }

            // Shared egress pipe across this server's concurrent downloads.
            let pipe = SharedPipe::new(egress);
            let transfers: Vec<Transfer> = idxs
                .iter()
                .zip(&sizes)
                .map(|(&i, &size)| Transfer { arrival: requests[i].start, size_bytes: size })
                .collect();
            // SharedPipe requires sorted arrivals; requests come in batch
            // order which the callers keep sorted. Guard in debug builds.
            debug_assert!(transfers.windows(2).all(|w| w[0].arrival <= w[1].arrival));
            let completions = pipe.run(&transfers);

            for ((pos, &i), done) in idxs.iter().enumerate().zip(&completions) {
                let req = &requests[i];
                let pipe_time = done.since(req.start);
                // The client cannot download faster than its own link.
                let last_mile_time = req.last_mile.serialization_time(sizes[pos]);
                let download = if pipe_time > last_mile_time { pipe_time } else { last_mile_time };
                let rtt =
                    topo.latency(req.client_node, server_node).scale(2.0) + req.last_mile.rtt();
                results[i] = rtt + penalties[pos] + download;
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_net::link::LinkKind;
    use fractal_net::topology::Position;

    fn setup(n_edges: usize) -> (Topology, OriginStore, Digest, Vec<NodeId>) {
        let mut topo = Topology::new();
        // Node 0 is the origin/application-server site.
        let _origin_node = topo.add_node(Position { x: 0.5, y: 0.5 });
        let edge_nodes = topo.add_spread_nodes(n_edges, 1);
        let mut origin = OriginStore::new();
        let digest = origin.publish(vec![0xAB; 50_000]);
        (topo, origin, digest, edge_nodes)
    }

    fn clients(topo: &mut Topology, n: usize) -> Vec<NodeId> {
        topo.add_spread_nodes(n, 99)
    }

    fn requests(nodes: &[NodeId], digest: Digest) -> Vec<RetrievalRequest> {
        nodes
            .iter()
            .map(|&c| RetrievalRequest {
                client_node: c,
                last_mile: LinkKind::Lan.link(),
                digest,
                start: SimTime::ZERO,
            })
            .collect()
    }

    #[test]
    fn centralized_degrades_with_load() {
        let (mut topo, origin, digest, _) = setup(0);
        let server = topo.add_node(Position { x: 0.5, y: 0.5 });
        let dep = Deployment::Centralized { node: server, egress_bytes_per_sec: 1e6 };

        let few = clients(&mut topo, 5);
        let many = clients(&mut topo, 100);
        let t_few = mean(&dep.retrieve_batch(&topo, &origin, &requests(&few, digest)));
        let t_many = mean(&dep.retrieve_batch(&topo, &origin, &requests(&many, digest)));
        assert!(
            t_many.as_secs_f64() > t_few.as_secs_f64() * 5.0,
            "centralized should degrade: few={t_few} many={t_many}"
        );
    }

    #[test]
    fn distributed_stays_flat() {
        let (mut topo, origin, digest, edge_nodes) = setup(20);
        let edges: Vec<EdgeServer> =
            edge_nodes.iter().map(|&n| EdgeServer::new(n, 1e6, 10_000_000)).collect();
        for e in &edges {
            e.warm(&origin, &[digest]);
        }
        let dep = Deployment::Distributed { edges };

        let few = clients(&mut topo, 5);
        let many = clients(&mut topo, 100);
        let t_few = mean(&dep.retrieve_batch(&topo, &origin, &requests(&few, digest)));
        let t_many = mean(&dep.retrieve_batch(&topo, &origin, &requests(&many, digest)));
        assert!(
            t_many.as_secs_f64() < t_few.as_secs_f64() * 4.0,
            "distributed should stay flat-ish: few={t_few} many={t_many}"
        );
    }

    #[test]
    fn distributed_beats_centralized_under_load() {
        let (mut topo, origin, digest, edge_nodes) = setup(20);
        let edges: Vec<EdgeServer> =
            edge_nodes.iter().map(|&n| EdgeServer::new(n, 1e6, 10_000_000)).collect();
        for e in &edges {
            e.warm(&origin, &[digest]);
        }
        let server = topo.add_node(Position { x: 0.5, y: 0.5 });
        let many = clients(&mut topo, 150);
        let reqs = requests(&many, digest);

        let central = Deployment::Centralized { node: server, egress_bytes_per_sec: 1e6 };
        let dist = Deployment::Distributed { edges };
        let t_c = mean(&central.retrieve_batch(&topo, &origin, &reqs));
        let t_d = mean(&dist.retrieve_batch(&topo, &origin, &reqs));
        assert!(
            t_c.as_secs_f64() > t_d.as_secs_f64() * 3.0,
            "centralized {t_c} should be ≫ distributed {t_d} at 150 clients"
        );
    }

    #[test]
    fn slow_last_mile_bounds_download() {
        let (mut topo, origin, digest, _) = setup(0);
        let server = topo.add_node(Position { x: 0.5, y: 0.5 });
        let dep = Deployment::Centralized { node: server, egress_bytes_per_sec: 1e9 };
        let c = clients(&mut topo, 1);
        let mut reqs = requests(&c, digest);
        reqs[0].last_mile = LinkKind::Bluetooth.link();
        let t = dep.retrieve_batch(&topo, &origin, &reqs)[0];
        // 50 KB over Bluetooth goodput (~72 KB/s): at least 0.5 s.
        assert!(t.as_secs_f64() > 0.5, "{t}");
    }

    #[test]
    fn cache_misses_charge_penalty_once() {
        let (mut topo, origin, digest, edge_nodes) = setup(1);
        let edges: Vec<EdgeServer> =
            edge_nodes.iter().map(|&n| EdgeServer::new(n, 1e8, 10_000_000)).collect();
        let dep = Deployment::Distributed { edges };
        let c = clients(&mut topo, 1);
        let reqs = requests(&c, digest);
        let t_cold = dep.retrieve_batch(&topo, &origin, &reqs)[0];
        let t_warm = dep.retrieve_batch(&topo, &origin, &reqs)[0];
        assert!(t_cold > t_warm, "cold {t_cold} must exceed warm {t_warm}");
    }

    #[test]
    fn routing_picks_closest_edge() {
        let (topo, _, _, edge_nodes) = setup(5);
        let edges: Vec<EdgeServer> =
            edge_nodes.iter().map(|&n| EdgeServer::new(n, 1e6, 1_000_000)).collect();
        let dep = Deployment::Distributed { edges };
        // Route every edge node to itself.
        for &n in &edge_nodes {
            assert_eq!(dep.route(&topo, n), n);
        }
    }

    fn mean(ds: &[SimDuration]) -> SimDuration {
        let total: u64 = ds.iter().map(|d| d.as_micros()).sum();
        SimDuration::micros(total / ds.len().max(1) as u64)
    }
}
