//! Property-based tests for the CDN substrate: LRU budget invariants and
//! closest-edge routing optimality.

use fractal_cdn::edge::LruCache;
use fractal_cdn::origin::{OriginStore, PadObject};
use fractal_net::time::SimDuration;
use fractal_net::topology::{NodeId, Position, Topology};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The LRU cache never exceeds its byte budget, for any access trace.
    #[test]
    fn lru_respects_budget(
        budget in 1u64..2_000,
        trace in proptest::collection::vec((0u8..20, 1usize..400), 1..60)
    ) {
        let mut cache = LruCache::new(budget);
        for (tag, size) in trace {
            let obj = PadObject::new(vec![tag; size]);
            let digest = obj.digest;
            cache.insert(obj);
            prop_assert!(cache.used_bytes() <= budget,
                         "{} > {budget}", cache.used_bytes());
            // If cached, the content round-trips.
            if let Some(got) = cache.get(&digest) {
                prop_assert_eq!(got.bytes.len(), size);
            }
        }
    }

    /// Recently used entries survive longer than stale ones: after
    /// touching X then inserting until eviction pressure, X outlives the
    /// untouched entry of equal size.
    #[test]
    fn lru_evicts_stale_before_touched(fill in 4u8..12) {
        let size = 100usize;
        let budget = (fill as u64 + 1) * size as u64;
        let mut cache = LruCache::new(budget);
        let hot = PadObject::new(vec![200u8; size]);
        let cold = PadObject::new(vec![201u8; size]);
        let (hot_d, cold_d) = (hot.digest, cold.digest);
        cache.insert(cold);
        cache.insert(hot);
        // Touch hot, then add pressure until one of them is gone.
        prop_assert!(cache.get(&hot_d).is_some());
        for i in 0..fill {
            cache.insert(PadObject::new(vec![i; size]));
        }
        if cache.get(&cold_d).is_some() {
            // If cold survived, hot must have too (strictly more recent).
            prop_assert!(cache.get(&hot_d).is_some());
        }
    }

    /// Closest-edge routing returns the latency argmin.
    #[test]
    fn routing_is_argmin(
        client in (0.0f64..1.0, 0.0f64..1.0),
        edges in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..12)
    ) {
        let mut topo = Topology::new();
        let c = topo.add_node(Position { x: client.0, y: client.1 });
        let edge_ids: Vec<NodeId> =
            edges.iter().map(|&(x, y)| topo.add_node(Position { x, y })).collect();
        let picked = topo.closest(c, &edge_ids).unwrap();
        let best: SimDuration =
            edge_ids.iter().map(|&e| topo.latency(c, e)).min().unwrap();
        prop_assert_eq!(topo.latency(c, picked), best);
    }

    /// Content addressing: the digest of a served object always matches
    /// the request digest.
    #[test]
    fn origin_is_content_addressed(blobs in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..200), 1..10))
    {
        let mut origin = OriginStore::new();
        let digests: Vec<_> = blobs.iter().map(|b| origin.publish(b.clone())).collect();
        for (blob, d) in blobs.iter().zip(&digests) {
            let obj = origin.fetch(d).unwrap();
            prop_assert_eq!(&obj.bytes[..], blob.as_slice());
            prop_assert_eq!(&fractal_crypto::sha1::sha1(&obj.bytes), d);
        }
    }
}
