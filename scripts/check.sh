#!/usr/bin/env sh
# Repo-wide hygiene gate: formatting, lints, and the full test suite.
# Run from the repository root before sending a change out for review.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> throughput smoke (2-thread concurrent engine gate)"
# Runs the 1- and 2-thread negotiation + session passes with the built-in
# decision-identity assertion: a deadlock hangs this step and a lost update
# or decision divergence aborts it, so concurrency regressions fail the
# gate rather than just skewing the benches.
cargo run -q --release -p fractal-bench --bin throughput -- --smoke

# The full workspace suite (cargo test -q --workspace) additionally runs the
# figure-regeneration tier; see CHANGES.md for the known calibration baseline
# there before treating a red run as a regression.

echo "All checks passed."
