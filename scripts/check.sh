#!/usr/bin/env sh
# Repo-wide hygiene gate: formatting, lints, and the full test suite.
# Run from the repository root before sending a change out for review.
#
#   scripts/check.sh          # everything, including the release-build
#                             # throughput smoke gate
#   scripts/check.sh --quick  # fmt + clippy + tier-1 tests only (skips the
#                             # release throughput build; what you want in
#                             # an edit-test loop or a time-boxed CI lane)
#
# On failure the script exits nonzero and names the step that failed, so a
# red CI run points at the culprit without scrolling.
set -eu

cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "check.sh: unknown flag '$arg' (supported: --quick)" >&2; exit 2 ;;
    esac
done

CURRENT_STEP="(startup)"
step() {
    CURRENT_STEP="$1"
    echo "==> $1"
}
on_exit() {
    status=$?
    if [ "$status" -ne 0 ]; then
        echo "FAILED at step: $CURRENT_STEP (exit $status)" >&2
    fi
    exit "$status"
}
trap on_exit EXIT

step "cargo fmt --check"
cargo fmt --all --check

# The default build is the NO-telemetry build: every recording call must
# compile to a zero-sized no-op and stay clippy-clean without the feature.
step "cargo clippy --all-targets -- -D warnings (no-telemetry build)"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo test -q (tier-1: root package)"
cargo test -q

# The shipped PADs must come out of the analyzer lint-clean: fasmlint
# exits nonzero on any deny-level lint (certain divide-by-zero, certain
# out-of-bounds, dead stores, ...). Runs in quick mode too — it is the
# cheapest gate here and the one a hand-edited .fasm is most likely to
# trip. Annotated disassembly lands in target/fasmlint for inspection.
step "fasmlint (shipped PAD sources)"
cargo run -q -p fractal-vm --bin fasmlint -- \
    --quiet --out target/fasmlint crates/pads/fasm/*.fasm

if [ "$QUICK" -eq 1 ]; then
    echo "All checks passed (--quick: skipped telemetry matrix + throughput/scenario/introspection smoke gates)."
    trap - EXIT
    exit 0
fi

step "cargo clippy --features telemetry (recording build)"
cargo clippy -p fractal-telemetry --all-targets --all-features -- -D warnings
cargo clippy -p fractal-core -p fractal-bench --all-targets --features telemetry -- -D warnings

step "cargo test --features telemetry (registry reconciliation + determinism suites)"
cargo test -q -p fractal-telemetry --all-features
cargo test -q -p fractal-core -p fractal-bench --features telemetry

step "throughput smoke (concurrent engine + reactor + transport + republish gate)"
# Runs the 1- and 2-thread negotiation/session/reactor passes with the
# built-in decision-identity assertion: a lost update or decision
# divergence aborts the binary, and a reactor stall is reported as a typed
# InpError::Stalled naming the stuck sessions. The reactor pass drives
# 64 in-flight sessions over framed LoopbackTransport byte streams; the
# transport pass repeats them behind simulated LAN/WLAN/Bluetooth links
# and asserts the per-link wire times identical across thread counts.
# The run ends with the live-republish pass: a dedicated writer thread
# trickles `&self` publishes into the shared server while the reactor
# pass re-runs, and the binary aborts on any decision divergence, a
# latest_version going backwards, an unreclaimed epoch generation, or a
# p99 blow-up against the quiet pass. The
# timeout is the backstop for a true deadlock (e.g. a lock cycle in the
# sharded proxy): rather than hanging CI for hours, the gate fails in
# ≤ 120 s with a diagnostic. `timeout` is coreutils; if the host lacks
# it, run unguarded.
SMOKE="cargo run -q --release -p fractal-bench --bin throughput -- --smoke"
if command -v timeout >/dev/null 2>&1; then
    # Build first (unmetered — cold compiles legitimately take minutes),
    # then meter only the run itself.
    cargo build -q --release -p fractal-bench --bin throughput
    # Capture the real exit status: inside `if ! cmd`, `$?` is the status of
    # the negated condition (always 0 in the branch), not of `cmd` itself.
    status=0
    timeout 120 $SMOKE || status=$?
    if [ "$status" -ne 0 ]; then
        if [ "$status" -eq 124 ]; then
            echo "throughput smoke DEADLOCKED: no completion within 120 s —" >&2
            echo "suspect a reactor stall or a lock cycle in the sharded proxy" >&2
        fi
        exit "$status"
    fi
else
    $SMOKE
fi

step "c100k smoke (sharded reactors over live loopback TCP)"
# A few hundred concurrent kernel-socket sessions dealt across 2 reactor
# shards: real EAGAIN churn, short writes at the socket buffer, FIN
# ordering. The binary asserts all sessions complete with peak in-flight
# equal to the population, per-shard telemetry reconciling with the
# reactor reports, and decision identity against the serial in-memory
# oracle. A quiet shard aborts with a typed InpError::Stalled naming the
# stuck sessions; the timeout is only the backstop for a bug in that very
# stall detector.
C100K="cargo run -q --release -p fractal-bench --bin c100k -- --smoke"
if command -v timeout >/dev/null 2>&1; then
    cargo build -q --release -p fractal-bench --bin c100k
    status=0
    timeout 120 $C100K || status=$?
    if [ "$status" -ne 0 ]; then
        if [ "$status" -eq 124 ]; then
            echo "c100k smoke DEADLOCKED: no completion within 120 s —" >&2
            echo "the shard stall detector itself failed to fire" >&2
        fi
        exit "$status"
    fi
else
    $C100K
fi

step "introspection smoke (flight recorder + live /metrics plane)"
# The same c100k smoke with the HTTP introspection sidecar attached
# (`--introspect 0` binds an ephemeral loopback port). The binary finishes
# by scraping its own /metrics and /healthz over the kernel socket and
# asserts the wire bytes equal the in-process merged snapshot exactly —
# a drift between the live plane and the registry exits nonzero here.
INTRO="./target/release/c100k --smoke --introspect 0"
if command -v timeout >/dev/null 2>&1; then
    status=0
    timeout 120 $INTRO || status=$?
    if [ "$status" -ne 0 ]; then
        if [ "$status" -eq 124 ]; then
            echo "introspection smoke HUNG: the plane or the stall detector wedged" >&2
        fi
        exit "$status"
    fi
else
    $INTRO
fi

step "benchdiff self-check (committed baselines diff clean against themselves)"
# Identity must be a fixed point: diffing a committed BENCH_*.json against
# itself has to align every series and report zero regressions. Catches
# row-identity or flattening bugs in the diff tool before CI relies on it
# to gate real regressions.
cargo build -q --release -p fractal-bench --bin benchdiff
./target/release/benchdiff BENCH_throughput.json BENCH_throughput.json >/dev/null
./target/release/benchdiff BENCH_scenarios.json  BENCH_scenarios.json  >/dev/null

# Each adversity scenario at --smoke scale, one named step per scenario
# so a red run says WHICH one broke. Every scenario runs twice in-process
# under its seed and asserts identical decisions, fault logs, and merged
# telemetry; injected faults must end in typed errors or recovery. The
# timeout is the backstop for a failure of the stall detector itself —
# an unexpected stall inside the budget writes STALL_<scenario>.txt and
# exits nonzero on its own.
cargo build -q --release -p fractal-bench --bin scenarios
for scenario in burst_arrivals lossy_link partition_recovery \
                handoff_renegotiation cache_stampede pad_rollout_rollback \
                live_republish; do
    step "scenarios smoke ($scenario)"
    SCEN="./target/release/scenarios --smoke --scenario $scenario"
    if command -v timeout >/dev/null 2>&1; then
        status=0
        timeout 120 $SCEN || status=$?
        if [ "$status" -ne 0 ]; then
            if [ "$status" -eq 124 ]; then
                echo "scenario $scenario HUNG: the stall detector never fired" >&2
            fi
            exit "$status"
        fi
    else
        $SCEN
    fi
done

step "BENCH_throughput.json carries per-link transport rows"
# The committed full-sweep results must include the transport pass: one
# row per simulated link profile with its mean negotiation time. A missing
# row means the sweep predates the transport layer (regenerate with
# `cargo run --release -p fractal-bench --features telemetry --bin throughput`).
for link in LAN WLAN Bluetooth; do
    if ! grep -q "\"link\": \"$link\"" BENCH_throughput.json; then
        echo "BENCH_throughput.json has no transport row for $link" >&2
        exit 1
    fi
done
grep -q '"negotiation_ms"' BENCH_throughput.json

step "BENCH_throughput.json carries the live-republish section"
# The committed sweep must include the republish pass — the rates CI's
# `benchdiff --only republish` gate diffs against. A missing section
# means the baseline predates the epoch-versioned write path
# (regenerate with the full sweep, then re-run `--bin c100k` to
# re-splice its rows).
for key in '"republish"' '"publishes_per_sec"' '"divergent_decisions": 0'; do
    if ! grep -q "$key" BENCH_throughput.json; then
        echo "BENCH_throughput.json is missing republish member $key" >&2
        exit 1
    fi
done

# The full workspace suite (cargo test -q --workspace) additionally runs the
# figure-regeneration tier; see CHANGES.md for the known calibration baseline
# there before treating a red run as a regression.

echo "All checks passed."
trap - EXIT
