#!/usr/bin/env sh
# Repo-wide hygiene gate: formatting, lints, and the full test suite.
# Run from the repository root before sending a change out for review.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

# The full workspace suite (cargo test -q --workspace) additionally runs the
# figure-regeneration tier; see CHANGES.md for the known calibration baseline
# there before treating a red run as a regression.

echo "All checks passed."
