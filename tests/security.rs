//! Security integration: the §3.5 mobile-code acceptance gauntlet under
//! attack — tampering, untrusted signers, malformed modules, hostile
//! bytecode, and sandbox escapes.

use fractal::core::client::FractalClient;
use fractal::core::meta::{PadId, PadMeta};
use fractal::core::presets::{pad_id, pad_overhead, ClientClass};
use fractal::core::server::AdaptiveContentMode;
use fractal::core::testbed::Testbed;
use fractal::core::FractalError;
use fractal::crypto::sign::{Signer, SignerRegistry};
use fractal::pads::artifact::build_pad;
use fractal::protocols::ProtocolId;
use fractal::vm::{assemble, Machine, SandboxPolicy, SignedModule, Trap, VerifyError};

fn meta_for(artifact: &fractal::pads::PadArtifact, id: PadId) -> PadMeta {
    PadMeta {
        id,
        protocol: artifact.protocol,
        size: artifact.wire_len() as u32,
        overhead: pad_overhead(artifact.protocol),
        digest: artifact.digest(),
        url: "cdn://pads/x".into(),
        parent: None,
        children: vec![],
    }
}

#[test]
fn bit_flips_anywhere_in_the_artifact_are_rejected() {
    let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
    let artifact = build_pad(ProtocolId::Gzip, &tb.signer);
    let meta = meta_for(&artifact, pad_id(ProtocolId::Gzip));
    let wire = artifact.signed.to_wire();

    // Flip one bit at a spread of positions including the signature,
    // header, code, and tail.
    let positions: Vec<usize> = (0..wire.len()).step_by((wire.len() / 23).max(1)).collect();
    for pos in positions {
        let mut client = tb.client(ClientClass::LaptopWlan);
        let mut tampered = wire.clone();
        tampered[pos] ^= 0x01;
        let err = client.deploy_pad(&meta, &tampered).unwrap_err();
        assert!(matches!(err, FractalError::PadRejected(_)), "flip at {pos} produced {err:?}");
        assert!(!client.is_deployed(meta.id));
    }
}

#[test]
fn valid_module_signed_by_stranger_is_rejected() {
    let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
    // A perfectly well-formed PAD signed by an unknown key.
    let mut rogue_reg = SignerRegistry::new();
    let rogue = rogue_reg.provision("evil-operator");
    let artifact = build_pad(ProtocolId::Gzip, &rogue);
    let meta = meta_for(&artifact, pad_id(ProtocolId::Gzip));
    let mut client = tb.client(ClientClass::LaptopWlan);
    let err = client.deploy_pad(&meta, &artifact.signed.to_wire()).unwrap_err();
    assert!(matches!(err, FractalError::PadRejected(_)));
}

#[test]
fn signed_but_malformed_bytecode_is_rejected_by_verifier() {
    // The operator's key signs garbage bytecode: signature passes, static
    // verification must still refuse it.
    let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
    let mut module = assemble(".memory 1\n.func decode args=6 locals=0\n ret\n").unwrap();
    // Corrupt the code *before* signing: a wild jump.
    module.functions[0].code = vec![0x03, 0xFF, 0x00, 0x00, 0x00]; // Jmp +255
    let signed = SignedModule::sign(&module, &tb.signer);
    let meta = PadMeta {
        id: PadId(77),
        protocol: ProtocolId::Direct,
        size: signed.wire_len() as u32,
        overhead: pad_overhead(ProtocolId::Direct),
        digest: signed.digest(),
        url: String::new(),
        parent: None,
        children: vec![],
    };
    let mut client = tb.client(ClientClass::DesktopLan);
    let err = client.deploy_pad(&meta, &signed.to_wire()).unwrap_err();
    assert!(matches!(err, FractalError::PadUnverifiable(_)), "{err:?}");
}

#[test]
fn hostile_infinite_loop_is_stopped_by_fuel() {
    let src = ".memory 1\n.func spin args=0 locals=0\nhot:\n jmp hot\n";
    let module = assemble(src).unwrap();
    let mut m = Machine::new(module, SandboxPolicy::for_pads().with_fuel(100_000)).unwrap();
    assert_eq!(m.call("spin", &[]), Err(Trap::FuelExhausted));
}

#[test]
fn hostile_memory_scan_is_stopped_by_bounds() {
    // Code that walks past the end of linear memory.
    let src = r#"
        .memory 1
        .func scan args=0 locals=1
        loop:
            local.get 0
            load8
            drop
            local.get 0
            push 1
            add
            local.set 0
            jmp loop
    "#;
    let module = assemble(src).unwrap();
    let mut m = Machine::new(module, SandboxPolicy::for_pads()).unwrap();
    assert!(matches!(m.call("scan", &[]), Err(Trap::OutOfBounds { .. })));
}

#[test]
fn sandbox_policy_denies_unneeded_intrinsics() {
    // Deploy the direct PAD under a policy that denies sha1; direct never
    // calls it, so it must still work — capability minimization.
    let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
    let artifact = build_pad(ProtocolId::Direct, &tb.signer);
    let meta = meta_for(&artifact, pad_id(ProtocolId::Direct));
    let mut client = tb.client(ClientClass::DesktopLan);
    client.policy = SandboxPolicy::for_pads().with_hosts(&[]);
    client.deploy_pad(&meta, &artifact.signed.to_wire()).unwrap();

    let payload = {
        use fractal::protocols::DiffCodec;
        fractal::protocols::direct::Direct.encode(&[], b"hello")
    };
    assert_eq!(client.decode_content(meta.id, 1, &payload).unwrap(), b"hello");

    // But the bitmap PAD's digests entry reaches sha1, and the analyzer
    // proves it: the PAD is rejected at deploy time, before any of its
    // code has run.
    let bitmap = build_pad(ProtocolId::Bitmap, &tb.signer);
    let bmeta = meta_for(&bitmap, pad_id(ProtocolId::Bitmap));
    let err = client.deploy_pad(&bmeta, &bitmap.signed.to_wire()).unwrap_err();
    assert!(
        matches!(err, FractalError::PadUnverifiable(VerifyError::CapabilityViolation { .. })),
        "{err:?}"
    );
    assert!(!client.is_deployed(bmeta.id));
}

#[test]
fn revoking_trust_blocks_future_deployments() {
    let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
    let artifact = build_pad(ProtocolId::Gzip, &tb.signer);
    let meta = meta_for(&artifact, pad_id(ProtocolId::Gzip));
    let mut client = tb.client(ClientClass::LaptopWlan);
    client.deploy_pad(&meta, &artifact.signed.to_wire()).unwrap();

    // Revoke and try a fresh deployment of another PAD by the same signer.
    let signer_id = artifact.signed.signature.key_id;
    assert!(client.trust.revoke(signer_id));
    let other = build_pad(ProtocolId::Bitmap, &tb.signer);
    let ometa = meta_for(&other, pad_id(ProtocolId::Bitmap));
    assert!(client.deploy_pad(&ometa, &other.signed.to_wire()).is_err());
}

/// Signs `src` with the testbed's trusted key and runs it through the full
/// client acceptance gauntlet, returning the rejection. The signature and
/// digest are *valid* — these modules attack the static analyzer, not the
/// crypto.
fn deploy_hostile(src: &str, tweak: impl FnOnce(&mut FractalClient)) -> FractalError {
    let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
    let module = assemble(src).unwrap_or_else(|e| panic!("hostile source must assemble: {e}"));
    let signed = SignedModule::sign(&module, &tb.signer);
    let meta = PadMeta {
        id: PadId(99),
        protocol: ProtocolId::Direct,
        size: signed.wire_len() as u32,
        overhead: pad_overhead(ProtocolId::Direct),
        digest: signed.digest(),
        url: String::new(),
        parent: None,
        children: vec![],
    };
    let mut client = tb.client(ClientClass::DesktopLan);
    tweak(&mut client);
    let err = client.deploy_pad(&meta, &signed.to_wire()).unwrap_err();
    assert!(!client.is_deployed(meta.id));
    assert_eq!(client.stats().pads_rejected, 1);
    err
}

#[test]
fn stack_underflow_is_rejected_statically() {
    // Structurally valid (decodes, terminates) but pops an empty stack.
    let err = deploy_hostile(".memory 1\n.func decode args=0 locals=0\n drop\n ret\n", |_| {});
    assert!(
        matches!(err, FractalError::PadUnverifiable(VerifyError::StackUnderflow { .. })),
        "{err:?}"
    );
}

#[test]
fn push_loop_stack_bomb_is_rejected_statically() {
    // Each iteration leaks one value onto the operand stack; the runtime
    // would only notice at the stack limit, the analyzer notices at the
    // loop head (heights 0 and 1 merge).
    let err = deploy_hostile(
        ".memory 1\n.func decode args=0 locals=0\nhot:\n push 1\n jmp hot\n",
        |_| {},
    );
    assert!(
        matches!(err, FractalError::PadUnverifiable(VerifyError::HeightMismatch { .. })),
        "{err:?}"
    );
}

#[test]
fn stack_height_beyond_policy_is_rejected_statically() {
    // Straight-line code whose peak height exceeds the client's sandbox
    // stack bound — no loop needed, the dataflow maximum is enough.
    let mut src = String::from(".memory 1\n.func decode args=0 locals=0\n");
    for _ in 0..5 {
        src.push_str(" push 1\n");
    }
    src.push_str(" ret\n");
    let err = deploy_hostile(&src, |client| client.policy.max_stack = 4);
    assert!(
        matches!(err, FractalError::PadUnverifiable(VerifyError::StackLimit { .. })),
        "{err:?}"
    );
}

#[test]
fn never_completing_pad_is_rejected_as_infeasible() {
    // Every path loops forever: the proven minimum fuel is infinite, so no
    // budget can admit it — rejected before instantiation rather than
    // discovered by fuel exhaustion on the first decode.
    let err = deploy_hostile(".memory 1\n.func decode args=0 locals=0\nhot:\n jmp hot\n", |_| {});
    assert!(matches!(err, FractalError::PadInfeasible { .. }), "{err:?}");
}

mod analyzer_soundness {
    //! Property: whatever the analyzer admits never trips an operand-stack
    //! trap at run time, and the fast path agrees with the checked
    //! interpreter on both result and fuel.

    use fractal::vm::{Function, Machine, Module, Op, SandboxPolicy, Trap};
    use proptest::prelude::*;

    /// Maps two random bytes to an instruction from a pool weighted toward
    /// pushes so a useful fraction of sequences pass the analyzer.
    fn op_from(sel: u8, imm: i8) -> Op {
        match sel % 24 {
            0..=7 => Op::PushI8(imm),
            8 => Op::Drop,
            9 => Op::Dup,
            10 => Op::Swap,
            11 => Op::Add,
            12 => Op::Sub,
            13 => Op::Mul,
            14 => Op::And,
            15 => Op::Or,
            16 => Op::Xor,
            17 => Op::Eqz,
            18 => Op::Nop,
            19 => Op::LocalGet(imm as u8 % 3),
            20 => Op::LocalSet(imm as u8 % 3),
            21 => Op::LocalTee(imm as u8 % 3),
            22 => Op::MemSize,
            _ => Op::Load8,
        }
    }

    proptest! {
        #[test]
        fn admitted_modules_never_stack_trap(
            raw in proptest::collection::vec((0u8..=255u8, -128i8..=127i8), 0..40)
        ) {
            let mut code = Vec::new();
            for (sel, imm) in raw {
                op_from(sel, imm).encode(&mut code);
            }
            Op::Ret.encode(&mut code);
            let module = Module {
                mem_pages: 1,
                functions: vec![Function {
                    name: "f".into(),
                    n_args: 0,
                    n_locals: 3,
                    code,
                }],
                data: vec![],
            };
            let policy = SandboxPolicy::for_pads().with_fuel(100_000);
            // Rejected modules are outside the property; admitted ones must
            // uphold it.
            if let Ok(analyzed) = module.clone().analyzed(&policy) {
                let min_fuel = analyzed.analysis.functions[0].min_fuel;
                let mut fast = Machine::new_analyzed(analyzed, policy.clone()).unwrap();
                let fast_res = fast.call("f", &[]);
                let mut checked = Machine::new(module, policy).unwrap();
                let checked_res = checked.call("f", &[]);
                prop_assert_eq!(&fast_res, &checked_res);
                prop_assert_eq!(fast.fuel_used(), checked.fuel_used());
                prop_assert!(
                    !matches!(
                        fast_res,
                        Err(Trap::StackUnderflow | Trap::StackOverflow | Trap::Wedged)
                    ),
                    "stack discipline violated at run time: {:?}",
                    fast_res
                );
                if fast_res.is_ok() {
                    prop_assert!(fast.fuel_used() >= min_fuel, "min_fuel was not a lower bound");
                }
            }
        }
    }
}

#[test]
fn signer_provisioning_is_isolated_between_operators() {
    let mut reg = SignerRegistry::new();
    let a: Signer = reg.provision("operator-a");
    let b: Signer = reg.provision("operator-b");
    let artifact_a = build_pad(ProtocolId::Direct, &a);
    let artifact_b = build_pad(ProtocolId::Direct, &b);
    // Same module bytes, different signatures.
    assert_eq!(artifact_a.signed.bytes, artifact_b.signed.bytes);
    assert_ne!(artifact_a.signed.signature, artifact_b.signed.signature);
}
