//! Security integration: the §3.5 mobile-code acceptance gauntlet under
//! attack — tampering, untrusted signers, malformed modules, hostile
//! bytecode, and sandbox escapes.

use fractal::core::presets::{pad_id, pad_overhead, ClientClass};
use fractal::core::meta::{PadId, PadMeta};
use fractal::core::server::AdaptiveContentMode;
use fractal::core::testbed::Testbed;
use fractal::core::FractalError;
use fractal::crypto::sign::{Signer, SignerRegistry};
use fractal::pads::artifact::build_pad;
use fractal::protocols::ProtocolId;
use fractal::vm::{assemble, Machine, SandboxPolicy, SignedModule, Trap};

fn meta_for(artifact: &fractal::pads::PadArtifact, id: PadId) -> PadMeta {
    PadMeta {
        id,
        protocol: artifact.protocol,
        size: artifact.wire_len() as u32,
        overhead: pad_overhead(artifact.protocol),
        digest: artifact.digest(),
        url: "cdn://pads/x".into(),
        parent: None,
        children: vec![],
    }
}

#[test]
fn bit_flips_anywhere_in_the_artifact_are_rejected() {
    let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
    let artifact = build_pad(ProtocolId::Gzip, &tb.signer);
    let meta = meta_for(&artifact, pad_id(ProtocolId::Gzip));
    let wire = artifact.signed.to_wire();

    // Flip one bit at a spread of positions including the signature,
    // header, code, and tail.
    let positions: Vec<usize> =
        (0..wire.len()).step_by((wire.len() / 23).max(1)).collect();
    for pos in positions {
        let mut client = tb.client(ClientClass::LaptopWlan);
        let mut tampered = wire.clone();
        tampered[pos] ^= 0x01;
        let err = client.deploy_pad(&meta, &tampered).unwrap_err();
        assert!(
            matches!(err, FractalError::PadRejected(_)),
            "flip at {pos} produced {err:?}"
        );
        assert!(!client.is_deployed(meta.id));
    }
}

#[test]
fn valid_module_signed_by_stranger_is_rejected() {
    let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
    // A perfectly well-formed PAD signed by an unknown key.
    let mut rogue_reg = SignerRegistry::new();
    let rogue = rogue_reg.provision("evil-operator");
    let artifact = build_pad(ProtocolId::Gzip, &rogue);
    let meta = meta_for(&artifact, pad_id(ProtocolId::Gzip));
    let mut client = tb.client(ClientClass::LaptopWlan);
    let err = client.deploy_pad(&meta, &artifact.signed.to_wire()).unwrap_err();
    assert!(matches!(err, FractalError::PadRejected(_)));
}

#[test]
fn signed_but_malformed_bytecode_is_rejected_by_verifier() {
    // The operator's key signs garbage bytecode: signature passes, static
    // verification must still refuse it.
    let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
    let mut module = assemble(".memory 1\n.func decode args=6 locals=0\n ret\n").unwrap();
    // Corrupt the code *before* signing: a wild jump.
    module.functions[0].code = vec![0x03, 0xFF, 0x00, 0x00, 0x00]; // Jmp +255
    let signed = SignedModule::sign(&module, &tb.signer);
    let meta = PadMeta {
        id: PadId(77),
        protocol: ProtocolId::Direct,
        size: signed.wire_len() as u32,
        overhead: pad_overhead(ProtocolId::Direct),
        digest: signed.digest(),
        url: String::new(),
        parent: None,
        children: vec![],
    };
    let mut client = tb.client(ClientClass::DesktopLan);
    let err = client.deploy_pad(&meta, &signed.to_wire()).unwrap_err();
    assert!(matches!(err, FractalError::PadUnverifiable(_)), "{err:?}");
}

#[test]
fn hostile_infinite_loop_is_stopped_by_fuel() {
    let src = ".memory 1\n.func spin args=0 locals=0\nhot:\n jmp hot\n";
    let module = assemble(src).unwrap();
    let mut m = Machine::new(module, SandboxPolicy::for_pads().with_fuel(100_000)).unwrap();
    assert_eq!(m.call("spin", &[]), Err(Trap::FuelExhausted));
}

#[test]
fn hostile_memory_scan_is_stopped_by_bounds() {
    // Code that walks past the end of linear memory.
    let src = r#"
        .memory 1
        .func scan args=0 locals=1
        loop:
            local.get 0
            load8
            drop
            local.get 0
            push 1
            add
            local.set 0
            jmp loop
    "#;
    let module = assemble(src).unwrap();
    let mut m = Machine::new(module, SandboxPolicy::for_pads()).unwrap();
    assert!(matches!(m.call("scan", &[]), Err(Trap::OutOfBounds { .. })));
}

#[test]
fn sandbox_policy_denies_unneeded_intrinsics() {
    // Deploy the direct PAD under a policy that denies sha1; direct never
    // calls it, so it must still work — capability minimization.
    let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
    let artifact = build_pad(ProtocolId::Direct, &tb.signer);
    let meta = meta_for(&artifact, pad_id(ProtocolId::Direct));
    let mut client = tb.client(ClientClass::DesktopLan);
    client.policy = SandboxPolicy::for_pads().with_hosts(&[]);
    client.deploy_pad(&meta, &artifact.signed.to_wire()).unwrap();

    let payload = {
        use fractal::protocols::DiffCodec;
        fractal::protocols::direct::Direct.encode(&[], b"hello")
    };
    assert_eq!(client.decode_content(meta.id, 1, &payload).unwrap(), b"hello");

    // But the bitmap PAD's digests entry needs sha1 and must be denied.
    let bitmap = build_pad(ProtocolId::Bitmap, &tb.signer);
    let bmeta = meta_for(&bitmap, pad_id(ProtocolId::Bitmap));
    client.deploy_pad(&bmeta, &bitmap.signed.to_wire()).unwrap();
    client.store_content(2, 0, vec![1u8; 4096]);
    let err = client.upstream_message(bmeta.id, ProtocolId::Bitmap, 2).unwrap_err();
    assert!(matches!(err, FractalError::PadRuntime(_)), "{err:?}");
}

#[test]
fn revoking_trust_blocks_future_deployments() {
    let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
    let artifact = build_pad(ProtocolId::Gzip, &tb.signer);
    let meta = meta_for(&artifact, pad_id(ProtocolId::Gzip));
    let mut client = tb.client(ClientClass::LaptopWlan);
    client.deploy_pad(&meta, &artifact.signed.to_wire()).unwrap();

    // Revoke and try a fresh deployment of another PAD by the same signer.
    let signer_id = artifact.signed.signature.key_id;
    assert!(client.trust.revoke(signer_id));
    let other = build_pad(ProtocolId::Bitmap, &tb.signer);
    let ometa = meta_for(&other, pad_id(ProtocolId::Bitmap));
    assert!(client.deploy_pad(&ometa, &other.signed.to_wire()).is_err());
}

#[test]
fn signer_provisioning_is_isolated_between_operators() {
    let mut reg = SignerRegistry::new();
    let a: Signer = reg.provision("operator-a");
    let b: Signer = reg.provision("operator-b");
    let artifact_a = build_pad(ProtocolId::Direct, &a);
    let artifact_b = build_pad(ProtocolId::Direct, &b);
    // Same module bytes, different signatures.
    assert_eq!(artifact_a.signed.bytes, artifact_b.signed.bytes);
    assert_ne!(artifact_a.signed.signature, artifact_b.signed.signature);
}
