//! Integration tests for the CDN substrate feeding the framework: PAD
//! objects published at the origin, edge caching, routing, and the
//! centralized/distributed capacity contrast.

use fractal::cdn::deployment::{Deployment, RetrievalRequest};
use fractal::cdn::edge::EdgeServer;
use fractal::cdn::origin::OriginStore;
use fractal::cdn::stats::RetrievalStats;
use fractal::core::server::AdaptiveContentMode;
use fractal::core::testbed::Testbed;
use fractal::net::link::LinkKind;
use fractal::net::time::SimTime;
use fractal::net::topology::{Position, Topology};

/// Publishes every case-study PAD artifact to an origin store.
fn publish_catalog() -> (OriginStore, Vec<fractal::crypto::Digest>) {
    let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
    let mut origin = OriginStore::new();
    let digests = tb.pad_repo.wires().into_iter().map(|wire| origin.publish(wire)).collect();
    (origin, digests)
}

#[test]
fn all_pads_retrievable_from_every_edge() {
    let (origin, digests) = publish_catalog();
    let mut topo = Topology::new();
    let edge_nodes = topo.add_spread_nodes(5, 3);
    let edges: Vec<EdgeServer> =
        edge_nodes.iter().map(|&n| EdgeServer::new(n, 1e6, 1_000_000)).collect();
    for edge in &edges {
        for d in &digests {
            let (obj, _) = edge.serve(d, &origin).expect("object served");
            assert_eq!(&fractal::crypto::sha1::sha1(&obj.bytes), d, "content addressed");
        }
        let (hits, misses) = edge.cache_stats();
        assert_eq!(misses, digests.len() as u64, "first pass all misses");
        assert_eq!(hits, 0);
    }
}

#[test]
fn edge_cache_turns_misses_into_hits() {
    let (origin, digests) = publish_catalog();
    let edge = EdgeServer::new(fractal::net::topology::NodeId(0), 1e6, 1_000_000);
    for d in &digests {
        edge.serve(d, &origin).unwrap();
    }
    for d in &digests {
        let (_, miss) = edge.serve(d, &origin).unwrap();
        assert!(!miss);
    }
    let (hits, misses) = edge.cache_stats();
    assert_eq!(hits, digests.len() as u64);
    assert_eq!(misses, digests.len() as u64);
}

#[test]
fn tiny_cache_thrashes_but_still_serves() {
    let (origin, digests) = publish_catalog();
    // Budget fits roughly one artifact: constant eviction, always correct.
    let edge = EdgeServer::new(fractal::net::topology::NodeId(0), 1e6, 600);
    for _ in 0..3 {
        for d in &digests {
            let (obj, _) = edge.serve(d, &origin).unwrap();
            assert_eq!(&fractal::crypto::sha1::sha1(&obj.bytes), d);
        }
    }
    let (hits, misses) = edge.cache_stats();
    assert!(misses > hits, "thrash expected: {hits} hits, {misses} misses");
}

#[test]
fn batch_retrieval_statistics_are_sane() {
    let (origin, digests) = publish_catalog();
    let mut topo = Topology::new();
    let server = topo.add_node(Position { x: 0.5, y: 0.5 });
    let clients = topo.add_spread_nodes(60, 9);
    let dep = Deployment::Centralized { node: server, egress_bytes_per_sec: 2.5e5 };
    let requests: Vec<RetrievalRequest> = clients
        .iter()
        .map(|&c| RetrievalRequest {
            client_node: c,
            last_mile: LinkKind::Wlan.link(),
            digest: digests[0],
            start: SimTime::ZERO,
        })
        .collect();
    let times = dep.retrieve_batch(&topo, &origin, &requests);
    let stats = RetrievalStats::compute(&times).unwrap();
    assert_eq!(stats.count, 60);
    assert!(stats.min <= stats.p50 && stats.p50 <= stats.p95 && stats.p95 <= stats.max);
    assert!(stats.max > stats.min, "shared pipe must spread completions");
}

#[test]
fn mixed_deployment_comparison_over_identical_requests() {
    let (origin, digests) = publish_catalog();
    let mut topo = Topology::new();
    let central = topo.add_node(Position { x: 0.5, y: 0.5 });
    let edge_nodes = topo.add_spread_nodes(10, 4);
    let clients = topo.add_spread_nodes(200, 5);

    let requests: Vec<RetrievalRequest> = clients
        .iter()
        .map(|&c| RetrievalRequest {
            client_node: c,
            last_mile: LinkKind::Lan.link(),
            digest: digests[0],
            start: SimTime::ZERO,
        })
        .collect();

    let dep_c = Deployment::Centralized { node: central, egress_bytes_per_sec: 2.5e5 };
    let edges: Vec<EdgeServer> =
        edge_nodes.iter().map(|&n| EdgeServer::new(n, 2.5e5, 10_000_000)).collect();
    for e in &edges {
        e.warm(&origin, &digests);
    }
    let dep_d = Deployment::Distributed { edges };

    let t_c = RetrievalStats::compute(&dep_c.retrieve_batch(&topo, &origin, &requests)).unwrap();
    let t_d = RetrievalStats::compute(&dep_d.retrieve_batch(&topo, &origin, &requests)).unwrap();
    assert!(
        t_c.mean.as_secs_f64() > 2.0 * t_d.mean.as_secs_f64(),
        "200 clients: centralized {} vs distributed {}",
        t_c.mean,
        t_d.mean
    );
}
