//! Integration tests for the mobile-code pipeline: every protocol's FVM
//! decoder against the native codecs over the real workload, plus fuel and
//! repeat-use behavior.

use fractal::core::server::codec_for;
use fractal::crypto::sign::SignerRegistry;
use fractal::pads::artifact::{build_pad, open_unchecked};
use fractal::pads::PadRuntime;
use fractal::protocols::ProtocolId;
use fractal::vm::SandboxPolicy;
use fractal::workload::mutate::EditProfile;
use fractal::workload::PageSet;

fn runtime(p: ProtocolId) -> PadRuntime {
    let signer = SignerRegistry::new().provision("mc-test");
    let artifact = build_pad(p, &signer);
    PadRuntime::new(open_unchecked(&artifact), SandboxPolicy::for_pads()).unwrap()
}

#[test]
fn every_protocol_decodes_real_pages_in_the_vm() {
    let pages = PageSet::new(77, 2);
    for protocol in ProtocolId::ALL {
        let codec = codec_for(protocol);
        let mut rt = runtime(protocol);
        for page in 0..pages.len() {
            for profile in [EditProfile::Localized, EditProfile::Shifting] {
                let old = pages.original(page).to_bytes();
                let new = pages.version(page, 1, profile).to_bytes();
                let payload = codec.encode(&old, &new);
                let decoded = rt.decode(&old, &payload).unwrap();
                assert_eq!(decoded, new, "{protocol} page {page} {profile:?}");
            }
        }
    }
}

#[test]
fn vm_and_native_agree_on_cold_fetches() {
    let pages = PageSet::new(78, 1);
    let new = pages.original(0).to_bytes();
    for protocol in ProtocolId::ALL {
        let codec = codec_for(protocol);
        let payload = codec.encode(&[], &new);
        let native = codec.decode(&[], &payload).unwrap();
        let mut rt = runtime(protocol);
        let vm = rt.decode(&[], &payload).unwrap();
        assert_eq!(native, vm, "{protocol}");
        assert_eq!(native, new);
    }
}

#[test]
fn upstream_builders_match_native_on_real_content() {
    let pages = PageSet::new(79, 1);
    let old = pages.original(0).to_bytes();

    let mut bitmap_rt = runtime(ProtocolId::Bitmap);
    let bs = fractal::protocols::bitmap::DEFAULT_BLOCK_SIZE;
    let vm_msg = bitmap_rt.upstream("digests", &old, bs as u32).unwrap();
    let native_msg = fractal::protocols::bitmap::Bitmap::with_block_size(bs).upstream_message(&old);
    assert_eq!(vm_msg, native_msg);

    let mut fixed_rt = runtime(ProtocolId::FixedBlock);
    let bs = fractal::protocols::fixedblock::DEFAULT_BLOCK_SIZE;
    let vm_msg = fixed_rt.upstream("signatures", &old, bs as u32).unwrap();
    let native_msg =
        fractal::protocols::fixedblock::FixedBlock::with_block_size(bs).upstream_message(&old);
    assert_eq!(vm_msg, native_msg);
}

#[test]
fn fuel_usage_scales_with_content_size() {
    let mut rt = runtime(ProtocolId::Gzip);
    let codec = codec_for(ProtocolId::Gzip);

    let small: Vec<u8> = b"fractal ".iter().copied().cycle().take(5_000).collect();
    let large: Vec<u8> = b"fractal ".iter().copied().cycle().take(100_000).collect();

    let p_small = codec.encode(&[], &small);
    rt.decode(&[], &p_small).unwrap();
    let fuel_small = rt.fuel_used();

    let p_large = codec.encode(&[], &large);
    rt.decode(&[], &p_large).unwrap();
    let fuel_large = rt.fuel_used() - fuel_small;

    assert!(
        fuel_large > fuel_small * 5,
        "20x content should cost >5x fuel ({fuel_small} vs {fuel_large})"
    );
}

#[test]
fn one_deployed_pad_serves_a_whole_session_sequence() {
    // The mobile-code module persists across requests (the point of
    // on-demand protocol retrieval): no re-instantiation needed.
    let pages = PageSet::new(80, 3);
    let codec = codec_for(ProtocolId::VaryBlock);
    let mut rt = runtime(ProtocolId::VaryBlock);
    let mut old = pages.original(0).to_bytes();
    for v in 1..=3 {
        let new = pages.version(0, v, EditProfile::Localized).to_bytes();
        let payload = codec.encode(&old, &new);
        let decoded = rt.decode(&old, &payload).unwrap();
        assert_eq!(decoded, new, "version {v}");
        old = decoded;
    }
}

#[test]
fn decoders_reject_cross_protocol_payloads() {
    // Feeding one protocol's payload to another's decoder must fail
    // cleanly (status or trap), never panic or return wrong bytes.
    let pages = PageSet::new(81, 1);
    let old = pages.original(0).to_bytes();
    let mut new = old.clone();
    new[5000] ^= 0xAA;

    for (enc, dec) in [
        (ProtocolId::Gzip, ProtocolId::VaryBlock),
        (ProtocolId::Bitmap, ProtocolId::Gzip),
        (ProtocolId::VaryBlock, ProtocolId::Bitmap),
    ] {
        let payload = codec_for(enc).encode(&old, &new);
        let mut rt = runtime(dec);
        match rt.decode(&old, &payload) {
            Err(_) => {}
            Ok(decoded) => {
                // Extremely unlikely, but if it "succeeds" it must not
                // silently corrupt: the framework's digest check on content
                // would catch it; here we just require inequality awareness.
                assert_ne!(decoded, new, "{enc} payload decoded by {dec}");
            }
        }
    }
}
