//! Fault-injection determinism: the adversity layer's contract is that
//! every injected fault is (a) seeded — the same [`FaultPlan`] seed
//! yields a byte-identical event log and identical session outcomes on
//! any run and at any thread count — and (b) *caught* — a corrupted
//! frame can surface only as a typed rejection, never as silently
//! accepted bytes. These are the properties the scenario soaks and CI
//! matrix lean on; they get their own integration suite because a
//! nondeterministic adversary makes every downstream assertion
//! unrepeatable.

use fractal::core::client::FractalClient;
use fractal::core::error::InpError;
use fractal::core::fault::{FaultEvent, FaultPlan};
use fractal::core::inp::InpMessage;
use fractal::core::meta::{AppId, PadMeta};
use fractal::core::reactor::{InpSession, Reactor, ReactorConfig, SessionPhase};
use fractal::core::server::AdaptiveContentMode;
use fractal::core::testbed::Testbed;
use fractal::core::transport::{Framer, LoopbackTransport};
use fractal::core::ClientClass;

/// Sessions in the shared population.
const N: usize = 48;

/// The adversary both tests drive: every chunk-indexed fault kind at
/// once. (Partitions are deliberately absent from the *threaded* run:
/// their heal timing rides on reactor-global clock advances, so their
/// log position is per-reactor-deterministic but not partition-invariant
/// across thread counts. The chunk-indexed faults are.)
fn plan() -> FaultPlan {
    FaultPlan::new(0xAD7E_57A1_u64).with_drop(15).with_dup(35).with_corrupt(25).with_reorder(50)
}

fn testbed() -> Testbed {
    let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
    for id in 0..N as u32 {
        tb.server.publish(id, vec![id as u8 + 1; 3_000]);
    }
    tb
}

fn client_for(tb: &Testbed, i: usize) -> FractalClient {
    tb.client(ClientClass::ALL[i % 3])
}

/// Order-sensitive FNV fold over a decision.
fn fingerprint(pads: &[PadMeta]) -> u64 {
    pads.iter().fold(0xcbf2_9ce4_8422_2325_u64, |h, p| {
        (h ^ p.id.0 ^ ((p.protocol as u64) << 32)).wrapping_mul(0x100_0000_01b3)
    })
}

/// What one session looks like from outside: terminal phase, decision
/// (when negotiated), and the full fault-event tape of its pair.
#[derive(Clone, PartialEq, Debug)]
struct SessionRecord {
    phase: &'static str,
    decision: Option<u64>,
    failed_typed: bool,
    events: Vec<FaultEvent>,
}

/// Runs sessions `range` of the global population on one reactor with
/// per-session fault streams derived from the *global* index, returning
/// one record per session in index order.
fn run_partition(tb: &Testbed, range: std::ops::Range<usize>) -> Vec<SessionRecord> {
    let cfg = ReactorConfig::new().frame_checksums();
    let mut reactor = Reactor::with_config(&tb.proxy, &tb.server, &tb.pad_repo, cfg);
    let mut logs = Vec::new();
    let mut ids = Vec::new();
    for i in range {
        let (pair, log) = plan().for_session(i as u64).wrap_pair(LoopbackTransport::pair(4096));
        logs.push(log);
        ids.push(
            reactor.spawn_on(InpSession::new(client_for(tb, i), tb.app_id, i as u32, 0), pair),
        );
    }
    // Dropped frames have no retransmit: a starved remainder is a typed
    // stall, which is an acceptable terminal state for this adversary.
    match reactor.run() {
        Ok(_) | Err(InpError::Stalled(_)) => {}
        Err(e) => panic!("fault injection must fail typed, got {e}"),
    }
    ids.iter()
        .zip(logs.iter())
        .map(|(&id, log)| {
            let s = reactor.session(id);
            SessionRecord {
                phase: s.phase().name(),
                decision: s.negotiated().map(fingerprint),
                failed_typed: s.phase() != SessionPhase::Failed || s.error().is_some(),
                events: log.events(),
            }
        })
        .collect()
}

#[test]
fn same_seed_is_byte_identical_across_runs() {
    let a = run_partition(&testbed(), 0..N);
    let b = run_partition(&testbed(), 0..N);
    assert_eq!(a, b, "same seed must replay the identical fault tape and outcomes");
    // The adversary actually showed up, and nothing failed untyped.
    assert!(a.iter().any(|r| !r.events.is_empty()), "no faults were injected at all");
    assert!(a.iter().all(|r| r.failed_typed), "a failed session lost its typed error");
}

#[test]
fn outcomes_are_identical_at_1_2_4_8_threads() {
    let baseline = run_partition(&testbed(), 0..N);
    for threads in [2usize, 4, 8] {
        let tb = testbed();
        let chunk = N.div_ceil(threads);
        let mut merged: Vec<(usize, Vec<SessionRecord>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let tb = &tb;
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(N);
                    scope.spawn(move || (lo, run_partition(tb, lo..hi)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        merged.sort_by_key(|(lo, _)| *lo);
        let records: Vec<SessionRecord> = merged.into_iter().flat_map(|(_, recs)| recs).collect();
        assert_eq!(
            records, baseline,
            "per-session fault tapes or decisions changed at {threads} threads"
        );
    }
}

#[test]
fn session_seeds_are_decorrelated() {
    // Neighbouring sessions under one plan must not share a fault tape:
    // a stampede where every session drops the same chunks would be a
    // much weaker adversary than the rates suggest.
    let records = run_partition(&testbed(), 0..N);
    let with_events: Vec<&Vec<FaultEvent>> =
        records.iter().map(|r| &r.events).filter(|e| !e.is_empty()).collect();
    assert!(with_events.len() >= 2, "not enough fault activity to compare");
    assert!(
        with_events.windows(2).any(|w| w[0] != w[1]),
        "per-session streams are correlated — every tape came out identical"
    );
}

mod corruption_is_always_caught {
    //! Property: flip any single byte of a checksummed frame and the
    //! receiving framer either keeps waiting (the flip shortened the
    //! declared length) or rejects with a typed error. `Ok(Some(_))` —
    //! silent acceptance of tampered bytes — must be unreachable.

    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn single_byte_flips_never_decode(
            payload in proptest::collection::vec(0u8..=255u8, 0..200),
            flip_sel in 0u16..u16::MAX,
            xor_sel in 0u8..=255u8
        ) {
            let msg = InpMessage::InitReq { app_id: AppId(7), payload };
            let mut wire = Framer::frame_checked(&msg);
            let pos = flip_sel as usize % wire.len();
            let xor = if xor_sel == 0 { 0xA5 } else { xor_sel };
            wire[pos] ^= xor;

            let mut rx = Framer::new().with_checksum();
            rx.push(&wire);
            loop {
                match rx.next_frame() {
                    Ok(None) => break,      // waiting on bytes that never come
                    Err(_) => break,        // typed rejection
                    Ok(Some(got)) => {
                        // A flip that decodes must decode to the original
                        // message — i.e. it only ever touched redundant
                        // bytes. With a length prefix, a body, and a
                        // checksum trailer there are none: fail loudly.
                        prop_assert!(
                            false,
                            "flipped byte {pos} xor {xor:#x} decoded to {:?}",
                            got
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unflipped_frames_still_decode() {
        // The property above is vacuous if checked framing rejects
        // everything; prove the clean path decodes.
        let msg = InpMessage::InitReq { app_id: AppId(7), payload: vec![1, 2, 3] };
        let mut rx = Framer::new().with_checksum();
        rx.push(&Framer::frame_checked(&msg));
        let got = rx.next_frame().expect("clean frame").expect("complete frame");
        assert_eq!(got, msg);
    }
}
