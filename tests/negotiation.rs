//! Integration tests for the negotiation machinery: INP over the wire,
//! adaptation caching at both ends, and deeper PATs with symbolic links.

use fractal::core::inp::InpMessage;
use fractal::core::meta::{AppId, PadId, PadMeta, PadOverhead};
use fractal::core::overhead::OverheadModel;
use fractal::core::pat::Pat;
use fractal::core::presets::{paper_ratios, ClientClass};
use fractal::core::proxy::AdaptationProxy;
use fractal::core::search::search;
use fractal::core::server::AdaptiveContentMode;
use fractal::core::testbed::Testbed;
use fractal::protocols::ProtocolId;

#[test]
fn inp_messages_survive_the_wire_with_real_pad_meta() {
    let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
    let env = ClientClass::PdaBluetooth.env();
    let pads = tb.proxy.negotiate(tb.app_id, env).unwrap();

    let msg = InpMessage::PadMetaRep { pads: pads.clone() };
    let bytes = msg.to_bytes();
    let back = InpMessage::from_bytes(&bytes).unwrap();
    match back {
        InpMessage::PadMetaRep { pads: got } => {
            assert_eq!(got, pads);
            // Distribution manager hid the tree links before sending.
            assert!(got.iter().all(|p| p.parent.is_none() && p.children.is_empty()));
        }
        other => panic!("wrong message: {}", other.name()),
    }
}

#[test]
fn proxy_cache_and_client_cache_compose() {
    let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
    let env = ClientClass::LaptopWlan.env();

    // Three negotiations from distinct client hosts with identical envs:
    // one search, two proxy-cache hits.
    for _ in 0..3 {
        tb.proxy.negotiate(tb.app_id, env).unwrap();
    }
    let stats = tb.proxy.stats();
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 2);
}

fn deep_pad(id: u64, client_ms: f64) -> PadMeta {
    PadMeta {
        id: PadId(id),
        protocol: ProtocolId::Direct,
        size: 500,
        overhead: PadOverhead {
            server_ms_per_mb: 0.0,
            client_ms_per_mb: client_ms,
            traffic_ratio: 0.5,
        },
        digest: fractal::crypto::sha1::sha1(&id.to_le_bytes()),
        url: String::new(),
        parent: None,
        children: vec![],
    }
}

#[test]
fn multi_level_pat_negotiates_a_chain() {
    // An application protocol over a transport choice (the paper's
    // FTP-over-TCP/UDP example shape): app PADs at level 1, transport PADs
    // at level 2, one transport shared via symlink.
    let mut pat = Pat::new(AppId(9));
    pat.insert(deep_pad(1, 2000.0), None).unwrap(); // app A (expensive)
    pat.insert(deep_pad(2, 100.0), None).unwrap(); // app B
    pat.insert(deep_pad(10, 50.0), Some(PadId(1))).unwrap(); // transport under A
    pat.insert(deep_pad(11, 30.0), Some(PadId(2))).unwrap(); // transport under B
    pat.insert_symlink(PadId(12), PadId(10), Some(PadId(2))).unwrap(); // shared transport

    assert_eq!(pat.leaf_count(), 3);
    let model = OverheadModel::paper(paper_ratios());
    let env = ClientClass::DesktopLan.env();
    let path = search(&pat, &model, &env, 1_000_000).unwrap();
    // Cheapest: B (100) + its transport (30).
    assert_eq!(path.pads, vec![PadId(2), PadId(11)]);

    // Mid-tree insertion: splice a mandatory compression PAD under B.
    pat.insert_between(deep_pad(20, 10.0), PadId(2)).unwrap();
    let path2 = search(&pat, &model, &env, 1_000_000).unwrap();
    assert_eq!(path2.pads.len(), 3);
    assert_eq!(path2.pads[0], PadId(2));
    assert_eq!(path2.pads[1], PadId(20));
}

#[test]
fn proxy_serves_multiple_applications_independently() {
    let proxy = AdaptationProxy::new(OverheadModel::paper(paper_ratios()));
    // App 1: one-level case study; App 2: a deep tree.
    let tb = Testbed::case_study(AdaptiveContentMode::Reactive);
    let pat1 = tb.proxy.pat(tb.app_id).unwrap();
    let meta1 = fractal::core::meta::AppMeta {
        app_id: AppId(1),
        pads: pat1.ids().iter().map(|&id| pat1.meta(id).unwrap().clone()).collect(),
    };
    proxy.push_app_meta(&meta1);

    let mut pads2 = vec![deep_pad(1, 10.0), deep_pad(2, 20.0)];
    pads2[1].parent = Some(PadId(1));
    let meta2 = fractal::core::meta::AppMeta { app_id: AppId(2), pads: pads2 };
    proxy.push_app_meta(&meta2);

    let env = ClientClass::DesktopLan.env();
    let r1 = proxy.negotiate(AppId(1), env).unwrap();
    let r2 = proxy.negotiate(AppId(2), env).unwrap();
    assert_eq!(r1.len(), 1);
    assert_eq!(r2.len(), 2, "deep tree negotiates a chain");
}

#[test]
fn negotiation_estimates_track_measured_bytes_directionally() {
    // The proxy decides on estimated traffic ratios; the real codecs then
    // move real bytes. The ordering the decision depends on must agree.
    use fractal::workload::{mutate::EditProfile, PageSet};
    let pages = PageSet::new(2005, 3);

    let measured = |p: ProtocolId| -> u64 {
        let codec = fractal::core::server::codec_for(p);
        (0..3)
            .map(|i| {
                let v0 = pages.original(i).to_bytes();
                let v1 = pages.version(i, 1, EditProfile::Localized).to_bytes();
                codec.traffic(&v0, &v1).total()
            })
            .sum()
    };
    let estimated =
        |p: ProtocolId| -> f64 { fractal::core::presets::pad_overhead(p).traffic_ratio };

    let pairs = [
        (ProtocolId::Direct, ProtocolId::Gzip),
        (ProtocolId::Gzip, ProtocolId::Bitmap),
        (ProtocolId::Bitmap, ProtocolId::VaryBlock),
    ];
    for (a, b) in pairs {
        assert!(
            (measured(a) > measured(b)) == (estimated(a) > estimated(b)),
            "estimate ordering diverges from measured for {a} vs {b}"
        );
    }
}
