//! End-to-end integration: the complete Fractal flow — negotiation, PAD
//! download from the CDN substrate, verification, sandboxed deployment,
//! adapted transfer, mobile-code decode — across crates.

use fractal::core::presets::ClientClass;
use fractal::core::server::AdaptiveContentMode;
use fractal::core::session::run_session;
use fractal::core::testbed::Testbed;
use fractal::net::time::SimDuration;
use fractal::protocols::ProtocolId;
use fractal::workload::mutate::EditProfile;
use fractal::workload::PageSet;

const PAGES: u32 = 4;

fn publish_pages(tb: &mut Testbed, pages: &PageSet) {
    for p in 0..pages.len() {
        tb.server.publish(p, pages.original(p).to_bytes());
        tb.server.publish(p, pages.version(p, 1, EditProfile::Localized).to_bytes());
    }
}

#[test]
fn every_client_class_completes_sessions_on_real_pages() {
    let pages = PageSet::new(7, PAGES);
    for class in ClientClass::ALL {
        let mut tb = Testbed::case_study(AdaptiveContentMode::Reactive);
        publish_pages(&mut tb, &pages);
        let mut client = tb.client(class);
        let link = class.link();
        for p in 0..PAGES {
            // Cold fetch of v0, then warm update to v1.
            for v in [0u32, 1] {
                let report = run_session(
                    &mut client,
                    &tb.proxy,
                    &tb.server,
                    &tb.pad_repo,
                    &link,
                    tb.app_id,
                    p,
                    v,
                )
                .unwrap();
                assert!(report.total() > SimDuration::ZERO);
            }
            assert_eq!(client.cached_content(p).unwrap().version, 1);
        }
        // One negotiation total: the protocol cache covers the rest.
        assert_eq!(client.stats().negotiations, 1, "{class}");
        assert_eq!(client.stats().pads_deployed, 1, "{class}");
    }
}

#[test]
fn adaptation_winners_match_paper_figure11b() {
    let pages = PageSet::new(8, 2);
    let picks: Vec<(ClientClass, ProtocolId)> = ClientClass::ALL
        .iter()
        .map(|&class| {
            let mut tb = Testbed::case_study(AdaptiveContentMode::Reactive);
            publish_pages(&mut tb, &pages);
            let mut client = tb.client(class);
            let link = class.link();
            let report = run_session(
                &mut client,
                &tb.proxy,
                &tb.server,
                &tb.pad_repo,
                &link,
                tb.app_id,
                0,
                0,
            )
            .unwrap();
            (class, report.protocol)
        })
        .collect();
    assert_eq!(picks[0], (ClientClass::DesktopLan, ProtocolId::Direct));
    assert_eq!(picks[1], (ClientClass::LaptopWlan, ProtocolId::Gzip));
    assert_eq!(picks[2], (ClientClass::PdaBluetooth, ProtocolId::Bitmap));
}

#[test]
fn warm_differencing_sessions_save_traffic_on_slow_links() {
    let pages = PageSet::new(9, 1);
    let mut tb = Testbed::case_study(AdaptiveContentMode::Reactive);
    publish_pages(&mut tb, &pages);
    let mut client = tb.client(ClientClass::PdaBluetooth);
    let link = ClientClass::PdaBluetooth.link();

    let cold =
        run_session(&mut client, &tb.proxy, &tb.server, &tb.pad_repo, &link, tb.app_id, 0, 0)
            .unwrap();
    let warm =
        run_session(&mut client, &tb.proxy, &tb.server, &tb.pad_repo, &link, tb.app_id, 0, 1)
            .unwrap();
    assert!(
        warm.traffic.total() < cold.traffic.total() / 4,
        "warm {} vs cold {}",
        warm.traffic.total(),
        cold.traffic.total()
    );
    assert!(warm.total() < cold.total());
}

#[test]
fn environment_change_renegotiates_and_changes_protocol() {
    // A mobile user: the same logical client moves from LAN to Bluetooth
    // (the paper's motivating scenario). The protocol cache is dropped on
    // an environment change and the negotiated protocol flips.
    let pages = PageSet::new(10, 1);
    let mut tb = Testbed::case_study(AdaptiveContentMode::Reactive);
    publish_pages(&mut tb, &pages);

    let mut desktop = tb.client(ClientClass::DesktopLan);
    let link = ClientClass::DesktopLan.link();
    let r1 = run_session(&mut desktop, &tb.proxy, &tb.server, &tb.pad_repo, &link, tb.app_id, 0, 0)
        .unwrap();
    assert_eq!(r1.protocol, ProtocolId::Direct);

    // Same person, now on the PDA: a new environment probes differently.
    let mut pda = tb.client(ClientClass::PdaBluetooth);
    let link = ClientClass::PdaBluetooth.link();
    let r2 =
        run_session(&mut pda, &tb.proxy, &tb.server, &tb.pad_repo, &link, tb.app_id, 0, 0).unwrap();
    assert_eq!(r2.protocol, ProtocolId::Bitmap);

    // The proxy cached both environments independently.
    assert!(tb.proxy.cached(tb.app_id, &ClientClass::DesktopLan.env()));
    assert!(tb.proxy.cached(tb.app_id, &ClientClass::PdaBluetooth.env()));
}

#[test]
fn proactive_server_mode_flips_pda_protocol_end_to_end() {
    let pages = PageSet::new(11, 1);
    let mut tb = Testbed::case_study(AdaptiveContentMode::Proactive);
    tb.proxy.set_mode(fractal::core::overhead::ServerComputeMode::Exclude);
    publish_pages(&mut tb, &pages);

    let mut client = tb.client(ClientClass::PdaBluetooth);
    let link = ClientClass::PdaBluetooth.link();
    let report =
        run_session(&mut client, &tb.proxy, &tb.server, &tb.pad_repo, &link, tb.app_id, 0, 1)
            .unwrap();
    assert_eq!(report.protocol, ProtocolId::VaryBlock);
    assert!(report.server_compute < SimDuration::millis(1));
}

#[test]
fn five_protocol_testbed_with_extension() {
    let mut tb = Testbed::with_protocols(&ProtocolId::ALL, AdaptiveContentMode::Reactive);
    let pages = PageSet::new(12, 1);
    publish_pages(&mut tb, &pages);
    let mut client = tb.client(ClientClass::LaptopWlan);
    let link = ClientClass::LaptopWlan.link();
    let report =
        run_session(&mut client, &tb.proxy, &tb.server, &tb.pad_repo, &link, tb.app_id, 0, 0)
            .unwrap();
    // With five leaves the negotiation still runs and picks something
    // feasible; the extension protocol must at least be deployable.
    assert!(ProtocolId::ALL.contains(&report.protocol));
}
